//! Canonical pretty-printer for the AST.
//!
//! The printer emits parseable Verilog with stable formatting; together
//! with the parser it satisfies the round-trip property
//! `parse(print(ast)) == ast`, which the corpus generators and the
//! fragmenter rely on.

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a whole source file.
///
/// # Examples
///
/// ```
/// use verispec_verilog::{parse, print_source_file};
/// let file = parse("module inv(input a,output y);assign y=~a;endmodule")?;
/// let printed = print_source_file(&file);
/// assert!(printed.contains("assign y = ~a;"));
/// // Round trip is stable:
/// assert_eq!(parse(&printed)?, file);
/// # Ok::<(), verispec_verilog::Error>(())
/// ```
pub fn print_source_file(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, m) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_module_into(m, &mut out);
    }
    out
}

/// Pretty-prints a single module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    print_module_into(module, &mut out);
    out
}

fn print_module_into(m: &Module, out: &mut String) {
    out.push_str("module ");
    out.push_str(&m.name);
    if !m.params.is_empty() {
        out.push_str(" #(\n");
        for (i, p) in m.params.iter().enumerate() {
            out.push_str("    parameter ");
            if let Some(r) = &p.range {
                let _ = write!(out, "{} ", range_str(r));
            }
            let _ = write!(out, "{} = {}", p.name, expr_str(&p.value));
            out.push_str(if i + 1 < m.params.len() { ",\n" } else { "\n" });
        }
        out.push(')');
    }
    if !m.ports.is_empty() {
        out.push_str(" (\n");
        for (i, p) in m.ports.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&port_str(p));
            out.push_str(if i + 1 < m.ports.len() { ",\n" } else { "\n" });
        }
        out.push(')');
    }
    out.push_str(";\n");
    for item in &m.items {
        print_item(item, 1, out);
    }
    out.push_str("endmodule\n");
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn port_str(p: &Port) -> String {
    let mut s = String::new();
    if let Some(d) = p.dir {
        s.push_str(d.as_str());
        s.push(' ');
    }
    if let Some(net) = p.net {
        s.push_str(match net {
            NetKind::Wire => "wire ",
            NetKind::Reg => "reg ",
        });
    }
    if p.signed {
        s.push_str("signed ");
    }
    if let Some(r) = &p.range {
        s.push_str(&range_str(r));
        s.push(' ');
    }
    s.push_str(&p.name);
    s
}

fn range_str(r: &Range) -> String {
    format!("[{}:{}]", expr_str(&r.msb), expr_str(&r.lsb))
}

fn print_item(item: &Item, level: usize, out: &mut String) {
    indent(level, out);
    match item {
        Item::Net(nd) => {
            out.push_str("wire ");
            if nd.signed {
                out.push_str("signed ");
            }
            if let Some(r) = &nd.range {
                let _ = write!(out, "{} ", range_str(r));
            }
            for (i, (name, init)) in nd.nets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                if let Some(e) = init {
                    let _ = write!(out, " = {}", expr_str(e));
                }
            }
            out.push_str(";\n");
        }
        Item::Reg(rd) => {
            out.push_str("reg ");
            if rd.signed {
                out.push_str("signed ");
            }
            if let Some(r) = &rd.range {
                let _ = write!(out, "{} ", range_str(r));
            }
            for (i, rv) in rd.regs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&rv.name);
                if let Some(mem) = &rv.mem {
                    let _ = write!(out, " {}", range_str(mem));
                }
                if let Some(init) = &rv.init {
                    let _ = write!(out, " = {}", expr_str(init));
                }
            }
            out.push_str(";\n");
        }
        Item::Integer(names) => {
            let _ = writeln!(out, "integer {};", names.join(", "));
        }
        Item::Genvar(names) => {
            let _ = writeln!(out, "genvar {};", names.join(", "));
        }
        Item::Param(decls) | Item::Localparam(decls) => {
            out.push_str(if matches!(item, Item::Param(_)) {
                "parameter "
            } else {
                "localparam "
            });
            if let Some(r) = decls.first().and_then(|d| d.range.as_ref()) {
                let _ = write!(out, "{} ", range_str(r));
            }
            for (i, d) in decls.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} = {}", d.name, expr_str(&d.value));
            }
            out.push_str(";\n");
        }
        Item::Assign(assigns) => {
            out.push_str("assign ");
            for (i, (lhs, rhs)) in assigns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} = {}", lvalue_str(lhs), expr_str(rhs));
            }
            out.push_str(";\n");
        }
        Item::Always(ab) => {
            out.push_str("always ");
            match &ab.sensitivity {
                Sensitivity::Star => out.push_str("@(*)"),
                Sensitivity::List(evs) => {
                    out.push_str("@(");
                    for (i, ev) in evs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" or ");
                        }
                        if let Some(edge) = ev.edge {
                            out.push_str(match edge {
                                Edge::Pos => "posedge ",
                                Edge::Neg => "negedge ",
                            });
                        }
                        out.push_str(&ev.signal);
                    }
                    out.push(')');
                }
            }
            out.push(' ');
            print_stmt(&ab.body, level, true, out);
        }
        Item::Initial(body) => {
            out.push_str("initial ");
            print_stmt(body, level, true, out);
        }
        Item::Instance(inst) => {
            out.push_str(&inst.module);
            if !inst.params.is_empty() {
                out.push_str(" #(");
                print_connections(&inst.params, out);
                out.push(')');
            }
            let _ = write!(out, " {} (", inst.name);
            print_connections(&inst.conns, out);
            out.push_str(");\n");
        }
        Item::PortDecl(pd) => {
            out.push_str(pd.dir.as_str());
            out.push(' ');
            if let Some(net) = pd.net {
                out.push_str(match net {
                    NetKind::Wire => "wire ",
                    NetKind::Reg => "reg ",
                });
            }
            if pd.signed {
                out.push_str("signed ");
            }
            if let Some(r) = &pd.range {
                let _ = write!(out, "{} ", range_str(r));
            }
            out.push_str(&pd.names.join(", "));
            out.push_str(";\n");
        }
    }
}

fn print_connections(conns: &[Connection], out: &mut String) {
    for (i, c) in conns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match c {
            Connection::Ordered(e) => out.push_str(&expr_str(e)),
            Connection::Named(port, Some(e)) => {
                let _ = write!(out, ".{}({})", port, expr_str(e));
            }
            Connection::Named(port, None) => {
                let _ = write!(out, ".{}()", port);
            }
        }
    }
}

/// Prints `stmt`; `inline_head` is true when the caller already emitted
/// indentation and a prefix (e.g. `always @(posedge clk) `).
fn print_stmt(stmt: &Stmt, level: usize, inline_head: bool, out: &mut String) {
    if !inline_head {
        indent(level, out);
    }
    match stmt {
        Stmt::Block { label, stmts } => {
            out.push_str("begin");
            if let Some(l) = label {
                let _ = write!(out, " : {l}");
            }
            out.push('\n');
            for s in stmts {
                print_stmt(s, level + 1, false, out);
            }
            indent(level, out);
            out.push_str("end\n");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = write!(out, "if ({})", expr_str(cond));
            // Guard against the dangling-else ambiguity: if the then branch
            // ends in an else-less `if`, a following `else` would re-attach
            // to it on reparse, so wrap the branch in `begin`/`end`.
            if else_branch.is_some() && then_branch.has_dangling_if_tail() {
                out.push_str(" begin\n");
                print_stmt(then_branch, level + 1, false, out);
                indent(level, out);
                out.push_str("end\n");
            } else {
                print_branch(then_branch, level, out);
            }
            if let Some(els) = else_branch {
                indent(level, out);
                out.push_str("else");
                print_branch(els, level, out);
            }
        }
        Stmt::Case {
            kind,
            scrutinee,
            arms,
            default,
        } => {
            let _ = writeln!(out, "{} ({})", kind.as_str(), expr_str(scrutinee));
            for arm in arms {
                indent(level + 1, out);
                let labels: Vec<String> = arm.labels.iter().map(expr_str).collect();
                let _ = write!(out, "{}:", labels.join(", "));
                print_branch(&arm.body, level + 1, out);
            }
            if let Some(d) = default {
                indent(level + 1, out);
                out.push_str("default:");
                print_branch(d, level + 1, out);
            }
            indent(level, out);
            out.push_str("endcase\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let _ = write!(
                out,
                "for ({}; {}; {})",
                assign_str(init),
                expr_str(cond),
                assign_str(step)
            );
            print_branch(body, level, out);
        }
        Stmt::While { cond, body } => {
            let _ = write!(out, "while ({})", expr_str(cond));
            print_branch(body, level, out);
        }
        Stmt::Repeat { count, body } => {
            let _ = write!(out, "repeat ({})", expr_str(count));
            print_branch(body, level, out);
        }
        Stmt::Blocking { lhs, rhs } => {
            let _ = writeln!(out, "{} = {};", lvalue_str(lhs), expr_str(rhs));
        }
        Stmt::NonBlocking { lhs, rhs } => {
            let _ = writeln!(out, "{} <= {};", lvalue_str(lhs), expr_str(rhs));
        }
        Stmt::Null => out.push_str(";\n"),
    }
}

/// Prints a statement that hangs off a control header: blocks continue on
/// the same line, other statements go on the next line indented.
fn print_branch(stmt: &Stmt, level: usize, out: &mut String) {
    if matches!(stmt, Stmt::Block { .. }) {
        out.push(' ');
        print_stmt(stmt, level, true, out);
    } else {
        out.push('\n');
        print_stmt(stmt, level + 1, false, out);
    }
}

/// Renders a blocking/non-blocking assignment without the trailing `;`,
/// for `for (...)` headers.
fn assign_str(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Blocking { lhs, rhs } => format!("{} = {}", lvalue_str(lhs), expr_str(rhs)),
        Stmt::NonBlocking { lhs, rhs } => format!("{} <= {}", lvalue_str(lhs), expr_str(rhs)),
        other => panic!("for-header statement must be an assignment, got {other:?}"),
    }
}

/// Renders an l-value.
pub fn lvalue_str(lv: &LValue) -> String {
    match lv {
        LValue::Ident(n) => n.clone(),
        LValue::Bit(n, i) => format!("{}[{}]", n, expr_str(i)),
        LValue::Part(n, r) => format!("{}{}", n, range_str(r)),
        LValue::IndexedPart {
            name,
            base,
            width,
            ascending,
        } => format!(
            "{}[{} {}: {}]",
            name,
            expr_str(base),
            if *ascending { "+" } else { "-" },
            expr_str(width)
        ),
        LValue::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(lvalue_str).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// Renders an expression with minimal parentheses.
pub fn expr_str(e: &Expr) -> String {
    expr_prec(e, 0)
}

/// Renders `e`; wraps in parentheses when its precedence is below
/// `min_prec` (the binding power required by the surrounding context).
fn expr_prec(e: &Expr, min_prec: u8) -> String {
    match e {
        Expr::Number(l) => l.to_source(),
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, inner) => {
            // Unary binds tighter than all binary operators (prec 12).
            let inner_s = expr_prec(inner, 12);
            // Avoid `- -x` gluing into `--x` ambiguity and `&&` from `& &x`.
            let sep = if needs_space(op, inner) { " " } else { "" };
            let s = format!("{}{}{}", op.as_str(), sep, inner_s);
            if min_prec > 12 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            // Left-assoc: left child may be same precedence; right child
            // must bind tighter. `**` is the mirror image.
            let (lmin, rmin) = if *op == BinaryOp::Pow {
                (prec + 1, prec)
            } else {
                (prec, prec + 1)
            };
            let s = format!(
                "{} {} {}",
                expr_prec(a, lmin),
                op.as_str(),
                expr_prec(b, rmin)
            );
            if prec < min_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Ternary(c, t, f) => {
            // Ternary has the lowest precedence; parenthesize unless at
            // the top of an expression context.
            let s = format!(
                "{} ? {} : {}",
                expr_prec(c, 1),
                expr_prec(t, 0),
                expr_prec(f, 0)
            );
            if min_prec > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Bit(n, i) => format!("{}[{}]", n, expr_str(i)),
        Expr::Part(n, r) => format!("{}{}", n, range_str(r)),
        Expr::IndexedPart {
            name,
            base,
            width,
            ascending,
        } => format!(
            "{}[{} {}: {}]",
            name,
            expr_str(base),
            if *ascending { "+" } else { "-" },
            expr_str(width)
        ),
        Expr::Concat(items) => {
            let inner: Vec<String> = items.iter().map(expr_str).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repeat(n, items) => {
            let inner: Vec<String> = items.iter().map(expr_str).collect();
            format!("{{{}{{{}}}}}", expr_prec(n, 12), inner.join(", "))
        }
        Expr::SysCall(name, args) => {
            let inner: Vec<String> = args.iter().map(expr_str).collect();
            format!("{}({})", name, inner.join(", "))
        }
    }
}

/// Whether a space is needed between a unary operator and its operand to
/// avoid re-lexing as a different token (`- -x`, `& &x`, `~ ~x`).
fn needs_space(op: &UnaryOp, inner: &Expr) -> bool {
    if let Expr::Unary(inner_op, _) = inner {
        let a = op.as_str();
        let b = inner_op.as_str();
        // Conservative: same leading char or concatenation forms a longer op.
        let glued = format!("{a}{b}");
        a.ends_with(b.chars().next().unwrap_or(' '))
            || matches!(
                glued.as_str(),
                "&&" | "||" | "~&" | "~|" | "~^" | "^~" | "**"
            )
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn round_trip(src: &str) {
        let file = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        let printed = print_source_file(&file);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(reparsed, file, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trips_mux() {
        round_trip(
            "module mux2to1(input [3:0] a, b, input sel, output [3:0] y);
               assign y = sel ? b : a;
             endmodule",
        );
    }

    #[test]
    fn round_trips_register_with_reset() {
        round_trip(
            "module dff(input clk, rst_n, d, output reg q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 1'b0;
                 else q <= d;
             endmodule",
        );
    }

    #[test]
    fn round_trips_alu_case() {
        round_trip(
            "module alu(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
               always @(*) case (op)
                 2'b00: y = a + b;
                 2'b01: y = a - b;
                 default: y = 4'h0;
               endcase
             endmodule",
        );
    }

    #[test]
    fn round_trips_for_loop_and_memory() {
        round_trip(
            "module fifo(input clk);
               reg [7:0] mem [0:15];
               integer i;
               initial begin
                 for (i = 0; i < 16; i = i + 1) mem[i] = 8'h00;
               end
             endmodule",
        );
    }

    #[test]
    fn round_trips_instances() {
        round_trip(
            "module top(input a, b, output y);
               wire w;
               and2 #(.W(1)) u0 (.x(a), .y(b), .z(w));
               inv u1 (w, y);
             endmodule",
        );
    }

    #[test]
    fn round_trips_parameters() {
        round_trip(
            "module p #(parameter W = 8, D = 16)(input [W-1:0] a, output [W-1:0] y);
               localparam HALF = D / 2;
               assign y = a + HALF;
             endmodule",
        );
    }

    #[test]
    fn round_trips_concat_repeat_partselect() {
        round_trip(
            "module c(input [7:0] a, output [15:0] y, output [3:0] z);
               assign y = {2{a}};
               assign z = a[5 +: 4] ^ a[7 -: 4] ^ {a[0], a[1], a[2], a[3]};
             endmodule",
        );
    }

    #[test]
    fn parenthesizes_by_precedence() {
        let e = parse_expr("(a + b) * c").expect("parse");
        assert_eq!(expr_str(&e), "(a + b) * c");
        let e = parse_expr("a + b * c").expect("parse");
        assert_eq!(expr_str(&e), "a + b * c");
    }

    #[test]
    fn nested_ternary_prints_parseably() {
        let e = parse_expr("a ? b : c ? d : e").expect("parse");
        let s = expr_str(&e);
        let e2 = parse_expr(&s).expect("reparse");
        assert_eq!(e, e2);
    }

    #[test]
    fn ternary_inside_binary_is_parenthesized() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(parse_expr("a ? b : c").expect("parse")),
            Box::new(Expr::ident("d")),
        );
        let s = expr_str(&e);
        assert_eq!(parse_expr(&s).expect("reparse"), e);
        assert!(s.starts_with('('), "ternary under + must be wrapped: {s}");
    }

    #[test]
    fn double_negation_keeps_space() {
        let e = parse_expr("- -a").expect("parse");
        let s = expr_str(&e);
        assert_eq!(parse_expr(&s).expect("reparse"), e, "printed: {s}");
    }

    #[test]
    fn reduction_after_bitand_keeps_space() {
        let e = parse_expr("a & &b").expect("parse");
        let s = expr_str(&e);
        assert_eq!(parse_expr(&s).expect("reparse"), e, "printed: {s}");
    }

    #[test]
    fn shift_of_sum_needs_no_parens() {
        // Verilog gives `+` higher precedence than `<<`, so the printer may
        // legally drop the parentheses; the AST must survive the trip.
        let e = parse_expr("(a + b) << 1").expect("parse");
        let s = expr_str(&e);
        assert_eq!(s, "a + b << 1");
        assert_eq!(parse_expr(&s).expect("reparse"), e);
        // The converse direction does need them.
        let e = parse_expr("a + (b << 1)").expect("parse");
        let s = expr_str(&e);
        assert_eq!(s, "a + (b << 1)");
        assert_eq!(parse_expr(&s).expect("reparse"), e);
    }
}
