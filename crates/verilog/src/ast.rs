//! Abstract syntax tree for the Verilog subset.
//!
//! The tree is deliberately span-free so that structural equality can be
//! used directly in round-trip property tests (`parse(print(ast)) == ast`).

use crate::span::Span;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// A parsed source file: one or more modules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

/// A Verilog `module ... endmodule` definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module identifier.
    pub name: String,
    /// Header parameters from `#(parameter ...)`.
    pub params: Vec<ParamDecl>,
    /// Ports from the (ANSI or non-ANSI) port list.
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<Item>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
            ports: Vec::new(),
            items: Vec::new(),
        }
    }
}

/// A single `parameter`/`localparam` binding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// Optional `[msb:lsb]` range on the parameter.
    pub range: Option<Range>,
    /// Parameter name.
    pub name: String,
    /// Default / bound value.
    pub value: Expr,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl Direction {
    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::Input => "input",
            Direction::Output => "output",
            Direction::Inout => "inout",
        }
    }
}

/// Net kind attached to a port or declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
}

/// One entry of a module port list.
///
/// For non-ANSI headers (`module m(a, b);` with directions declared in the
/// body) only `name` is populated and `dir` is `None`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// Direction, if declared in the header (ANSI style).
    pub dir: Option<Direction>,
    /// `wire`/`reg` qualifier, if present.
    pub net: Option<NetKind>,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional `[msb:lsb]` range.
    pub range: Option<Range>,
    /// Port name.
    pub name: String,
}

impl Port {
    /// An ANSI port with the given direction and optional range.
    pub fn ansi(dir: Direction, range: Option<Range>, name: impl Into<String>) -> Self {
        Self {
            dir: Some(dir),
            net: None,
            signed: false,
            range,
            name: name.into(),
        }
    }
}

/// A `[msb:lsb]` range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Range {
    /// Most-significant bound expression.
    pub msb: Expr,
    /// Least-significant bound expression.
    pub lsb: Expr,
}

impl Range {
    /// Builds a constant `[msb:lsb]` range.
    pub fn constant(msb: u64, lsb: u64) -> Self {
        Self {
            msb: Expr::unsized_dec(msb),
            lsb: Expr::unsized_dec(lsb),
        }
    }
}

/// A module body item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Item {
    /// `wire [..] a = e, b;`
    Net(NetDecl),
    /// `reg [..] a, mem [0:15];`
    Reg(RegDecl),
    /// `integer i, j;`
    Integer(Vec<String>),
    /// `genvar i;`
    Genvar(Vec<String>),
    /// `parameter P = 1, Q = 2;`
    Param(Vec<ParamDecl>),
    /// `localparam P = 1;`
    Localparam(Vec<ParamDecl>),
    /// `assign a = e, b = f;`
    Assign(Vec<(LValue, Expr)>),
    /// `always @(...) stmt`
    Always(AlwaysBlock),
    /// `initial stmt`
    Initial(Stmt),
    /// `adder #(.W(4)) u0 (.a(x), .b(y));`
    Instance(Instance),
    /// Non-ANSI port declaration in the body: `input [3:0] a, b;`
    PortDecl(PortDecl),
}

/// Non-ANSI port direction declaration inside the module body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortDecl {
    /// Declared direction.
    pub dir: Direction,
    /// Optional net kind (`output reg ...`).
    pub net: Option<NetKind>,
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional range shared by all names.
    pub range: Option<Range>,
    /// Declared names.
    pub names: Vec<String>,
}

/// `wire` declaration, possibly with inline continuous assignments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetDecl {
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional range shared by all nets.
    pub range: Option<Range>,
    /// `(name, optional initializer)` pairs.
    pub nets: Vec<(String, Option<Expr>)>,
}

/// `reg` declaration; each variable may carry a memory dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegDecl {
    /// Whether declared `signed`.
    pub signed: bool,
    /// Optional element range shared by all variables.
    pub range: Option<Range>,
    /// Declared variables.
    pub regs: Vec<RegVar>,
}

/// One variable inside a [`RegDecl`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegVar {
    /// Variable name.
    pub name: String,
    /// Memory dimension (`reg [7:0] mem [0:15]`), if any.
    pub mem: Option<Range>,
    /// Optional initializer (`reg r = 0;`).
    pub init: Option<Expr>,
}

impl RegVar {
    /// A plain scalar/vector reg without memory dimension or initializer.
    pub fn simple(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            mem: None,
            init: None,
        }
    }
}

/// An `always` process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlwaysBlock {
    /// The sensitivity list.
    pub sensitivity: Sensitivity,
    /// Process body.
    pub body: Stmt,
}

/// Sensitivity of an `always` process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// `@*` or `@(*)` — combinational.
    Star,
    /// `@(posedge clk or negedge rst_n or a)` — explicit list.
    List(Vec<EventExpr>),
}

/// One entry in an explicit sensitivity list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventExpr {
    /// Edge qualifier, if any.
    pub edge: Option<Edge>,
    /// The watched signal.
    pub signal: String,
}

/// Clock/reset edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edge {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Instantiated module name.
    pub module: String,
    /// Parameter overrides from `#(...)`.
    pub params: Vec<Connection>,
    /// Instance name.
    pub name: String,
    /// Port connections.
    pub conns: Vec<Connection>,
}

/// A port or parameter connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Connection {
    /// Positional connection.
    Ordered(Expr),
    /// `.port(expr)`; `None` expression means explicitly unconnected.
    Named(String, Option<Expr>),
}

/// A behavioral statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `begin [: label] ... end`
    Block {
        /// Optional block label.
        label: Option<String>,
        /// Statements in order.
        stmts: Vec<Stmt>,
    },
    /// `if (cond) then [else els]`
    If {
        /// Condition.
        cond: Expr,
        /// Taken branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case/casez/casex (expr) ... endcase`
    Case {
        /// Which case flavor.
        kind: CaseKind,
        /// Scrutinee expression.
        scrutinee: Expr,
        /// Non-default arms, in order.
        arms: Vec<CaseArm>,
        /// Optional `default:` body.
        default: Option<Box<Stmt>>,
    },
    /// `for (init; cond; step) body`
    For {
        /// Loop initialization (a blocking assignment).
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Loop step (a blocking assignment).
        step: Box<Stmt>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `repeat (count) body`
    Repeat {
        /// Iteration count.
        count: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `lhs = rhs;`
    Blocking {
        /// Assignment target.
        lhs: LValue,
        /// Assigned expression.
        rhs: Expr,
    },
    /// `lhs <= rhs;`
    NonBlocking {
        /// Assignment target.
        lhs: LValue,
        /// Assigned expression.
        rhs: Expr,
    },
    /// A lone `;`.
    Null,
}

impl Stmt {
    /// Whether this statement's trailing position is an `if` with no
    /// `else`, which would capture a following `else` when printed
    /// without braces (the dangling-else ambiguity).
    pub fn has_dangling_if_tail(&self) -> bool {
        match self {
            Stmt::If {
                else_branch: None, ..
            } => true,
            Stmt::If {
                else_branch: Some(e),
                ..
            } => e.has_dangling_if_tail(),
            Stmt::For { body, .. } | Stmt::While { body, .. } | Stmt::Repeat { body, .. } => {
                body.has_dangling_if_tail()
            }
            _ => false,
        }
    }

    /// Structural normalization: unlabeled `begin/end` wrapping a single
    /// statement is replaced by that statement. Used to compare ASTs
    /// modulo the braces a printer may legally insert.
    pub fn normalized(&self) -> Stmt {
        match self {
            Stmt::Block { label: None, stmts } if stmts.len() == 1 => stmts[0].normalized(),
            Stmt::Block { label, stmts } => Stmt::Block {
                label: label.clone(),
                stmts: stmts.iter().map(Stmt::normalized).collect(),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: cond.clone(),
                then_branch: Box::new(then_branch.normalized()),
                else_branch: else_branch.as_ref().map(|e| Box::new(e.normalized())),
            },
            Stmt::Case {
                kind,
                scrutinee,
                arms,
                default,
            } => Stmt::Case {
                kind: *kind,
                scrutinee: scrutinee.clone(),
                arms: arms
                    .iter()
                    .map(|a| CaseArm {
                        labels: a.labels.clone(),
                        body: a.body.normalized(),
                    })
                    .collect(),
                default: default.as_ref().map(|d| Box::new(d.normalized())),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: Box::new(body.normalized()),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: cond.clone(),
                body: Box::new(body.normalized()),
            },
            Stmt::Repeat { count, body } => Stmt::Repeat {
                count: count.clone(),
                body: Box::new(body.normalized()),
            },
            other => other.clone(),
        }
    }
}

impl Module {
    /// Normalizes every statement in the module; see [`Stmt::normalized`].
    pub fn normalized(&self) -> Module {
        let mut m = self.clone();
        for item in &mut m.items {
            match item {
                Item::Always(ab) => ab.body = ab.body.normalized(),
                Item::Initial(body) => *body = body.normalized(),
                _ => {}
            }
        }
        m
    }
}

impl SourceFile {
    /// Normalizes every module; see [`Stmt::normalized`].
    pub fn normalized(&self) -> SourceFile {
        SourceFile {
            modules: self.modules.iter().map(Module::normalized).collect(),
        }
    }
}

/// Flavor of a `case` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// `case` — exact match.
    Case,
    /// `casez` — `z`/`?` bits are wildcards.
    Casez,
    /// `casex` — `x`/`z`/`?` bits are wildcards.
    Casex,
}

impl CaseKind {
    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            CaseKind::Case => "case",
            CaseKind::Casez => "casez",
            CaseKind::Casex => "casex",
        }
    }
}

/// One non-default arm of a `case` statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Comma-separated match labels.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LValue {
    /// `name`
    Ident(String),
    /// `name[idx]` — bit select or memory element.
    Bit(String, Box<Expr>),
    /// `name[msb:lsb]`
    Part(String, Box<Range>),
    /// `name[base +: width]` / `name[base -: width]`
    IndexedPart {
        /// Target name.
        name: String,
        /// Base index expression.
        base: Box<Expr>,
        /// Width expression (must elaborate to a constant).
        width: Box<Expr>,
        /// `true` for `+:`, `false` for `-:`.
        ascending: bool,
    },
    /// `{a, b[0], c[3:1]}`
    Concat(Vec<LValue>),
}

impl LValue {
    /// The identifiers written by this l-value, in order.
    pub fn written_names(&self) -> Vec<&str> {
        match self {
            LValue::Ident(n) | LValue::Bit(n, _) | LValue::Part(n, _) => vec![n.as_str()],
            LValue::IndexedPart { name, .. } => vec![name.as_str()],
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.written_names()).collect(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants mirror the Verilog operators one-to-one
pub enum UnaryOp {
    Plus,
    Minus,
    Not,     // !
    BitNot,  // ~
    RedAnd,  // &
    RedOr,   // |
    RedXor,  // ^
    RedNand, // ~&
    RedNor,  // ~|
    RedXnor, // ~^
}

impl UnaryOp {
    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        use UnaryOp::*;
        match self {
            Plus => "+",
            Minus => "-",
            Not => "!",
            BitNot => "~",
            RedAnd => "&",
            RedOr => "|",
            RedXor => "^",
            RedNand => "~&",
            RedNor => "~|",
            RedXnor => "~^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants mirror the Verilog operators one-to-one
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Shl,
    Shr,
    AShl,
    AShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    BitAnd,
    BitOr,
    BitXor,
    BitXnor,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "**",
            Shl => "<<",
            Shr => ">>",
            AShl => "<<<",
            AShr => ">>>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            CaseEq => "===",
            CaseNe => "!==",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            BitXnor => "~^",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    /// Binding power for the pretty-printer and parser; higher binds tighter.
    pub fn precedence(&self) -> u8 {
        use BinaryOp::*;
        match self {
            LogOr => 1,
            LogAnd => 2,
            BitOr => 3,
            BitXor | BitXnor => 4,
            BitAnd => 5,
            Eq | Ne | CaseEq | CaseNe => 6,
            Lt | Le | Gt | Ge => 7,
            Shl | Shr | AShl | AShr => 8,
            Add | Sub => 9,
            Mul | Div | Mod => 10,
            Pow => 11,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// A numeric literal.
    Number(Literal),
    /// A plain identifier reference.
    Ident(String),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `name[idx]` — bit select or memory read.
    Bit(String, Box<Expr>),
    /// `name[msb:lsb]`
    Part(String, Box<Range>),
    /// `name[base +: w]` / `name[base -: w]`
    IndexedPart {
        /// Selected name.
        name: String,
        /// Base index expression.
        base: Box<Expr>,
        /// Constant width expression.
        width: Box<Expr>,
        /// `true` for `+:`.
        ascending: bool,
    },
    /// `{a, b, c}`
    Concat(Vec<Expr>),
    /// `{n{a, b}}`
    Repeat(Box<Expr>, Vec<Expr>),
    /// `$signed(e)`, `$unsigned(e)`, …
    SysCall(String, Vec<Expr>),
}

impl Expr {
    /// Unsized decimal literal helper (`42`).
    pub fn unsized_dec(v: u64) -> Expr {
        Expr::Number(Literal::unsized_dec(v))
    }

    /// Identifier helper.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Collects every identifier read by this expression into `out`.
    pub fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Number(_) => {}
            Expr::Ident(n) => out.push(n),
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_idents(out);
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Bit(n, i) => {
                out.push(n);
                i.collect_idents(out);
            }
            Expr::Part(n, r) => {
                out.push(n);
                r.msb.collect_idents(out);
                r.lsb.collect_idents(out);
            }
            Expr::IndexedPart {
                name, base, width, ..
            } => {
                out.push(name);
                base.collect_idents(out);
                width.collect_idents(out);
            }
            Expr::Concat(es) => {
                for e in es {
                    e.collect_idents(out);
                }
            }
            Expr::Repeat(n, es) => {
                n.collect_idents(out);
                for e in es {
                    e.collect_idents(out);
                }
            }
            Expr::SysCall(_, es) => {
                for e in es {
                    e.collect_idents(out);
                }
            }
        }
    }
}

/// Numeric literal base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Base {
    /// Binary (`'b`).
    Bin,
    /// Octal (`'o`).
    Oct,
    /// Decimal (`'d`, or a bare integer).
    Dec,
    /// Hexadecimal (`'h`).
    Hex,
}

impl Base {
    /// Base letter used in source text.
    pub fn letter(&self) -> char {
        match self {
            Base::Bin => 'b',
            Base::Oct => 'o',
            Base::Dec => 'd',
            Base::Hex => 'h',
        }
    }

    /// Bits conveyed per digit (decimal handled separately).
    fn bits_per_digit(&self) -> u32 {
        match self {
            Base::Bin => 1,
            Base::Oct => 3,
            Base::Hex => 4,
            Base::Dec => 0,
        }
    }
}

/// A numeric literal with optional size, sign marker, and x/z digits.
///
/// Values wider than 64 bits are rejected at parse time; the VeriSpec
/// subset works on ≤64-bit vectors throughout.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Declared width in bits (`8'hFF` → 8), or `None` if unsized.
    pub width: Option<u32>,
    /// Whether spelled with the `s` marker (`4'sd3`).
    pub signed: bool,
    /// Spelled base; bare integers are `Dec` with `width == None`.
    pub base: Base,
    /// Two-state value bits (x/z positions are zero here).
    pub value: u64,
    /// Mask of `x` digit bit positions.
    pub x_mask: u64,
    /// Mask of `z`/`?` digit bit positions.
    pub z_mask: u64,
}

impl Literal {
    /// Unsized decimal literal.
    pub fn unsized_dec(v: u64) -> Self {
        Self {
            width: None,
            signed: false,
            base: Base::Dec,
            value: v,
            x_mask: 0,
            z_mask: 0,
        }
    }

    /// Sized literal with the given base and two-state value.
    pub fn sized(width: u32, base: Base, value: u64) -> Self {
        Self {
            width: Some(width),
            signed: false,
            base,
            value,
            x_mask: 0,
            z_mask: 0,
        }
    }

    /// Whether any digit is `x` or `z`.
    pub fn has_xz(&self) -> bool {
        self.x_mask != 0 || self.z_mask != 0
    }

    /// Effective width used for evaluation (32 for unsized, per the LRM's
    /// minimum integer width convention).
    pub fn effective_width(&self) -> u32 {
        self.width.unwrap_or(32)
    }

    /// Parses a raw literal spelling as produced by the lexer.
    ///
    /// # Errors
    ///
    /// Returns an error for widths above 64, values that do not fit, digits
    /// invalid for the base, or `x`/`z` digits in decimal literals.
    pub fn parse(raw: &str, span: Span) -> Result<Literal> {
        match raw.find('\'') {
            None => {
                let clean: String = raw.chars().filter(|c| *c != '_').collect();
                let value = clean.parse::<u64>().map_err(|_| {
                    Error::new(span, format!("decimal literal `{raw}` overflows 64 bits"))
                })?;
                Ok(Literal::unsized_dec(value))
            }
            Some(tick) => {
                let width = if tick == 0 {
                    None
                } else {
                    let w: String = raw[..tick].chars().filter(|c| *c != '_').collect();
                    let w = w
                        .parse::<u32>()
                        .map_err(|_| Error::new(span, format!("bad literal width in `{raw}`")))?;
                    if w == 0 || w > 64 {
                        return Err(Error::new(
                            span,
                            format!("literal width {w} outside supported range 1..=64"),
                        ));
                    }
                    Some(w)
                };
                let mut rest = &raw[tick + 1..];
                let mut signed = false;
                if rest.starts_with(['s', 'S']) {
                    signed = true;
                    rest = &rest[1..];
                }
                let base_ch = rest
                    .chars()
                    .next()
                    .ok_or_else(|| Error::new(span, format!("truncated literal `{raw}`")))?;
                let base = match base_ch.to_ascii_lowercase() {
                    'b' => Base::Bin,
                    'o' => Base::Oct,
                    'd' => Base::Dec,
                    'h' => Base::Hex,
                    other => {
                        return Err(Error::new(
                            span,
                            format!("invalid base `{other}` in `{raw}`"),
                        ))
                    }
                };
                let digits = &rest[1..];
                Self::parse_digits(width, signed, base, digits, raw, span)
            }
        }
    }

    fn parse_digits(
        width: Option<u32>,
        signed: bool,
        base: Base,
        digits: &str,
        raw: &str,
        span: Span,
    ) -> Result<Literal> {
        let mut value: u64 = 0;
        let mut x_mask: u64 = 0;
        let mut z_mask: u64 = 0;
        if base == Base::Dec {
            let clean: String = digits.chars().filter(|c| *c != '_').collect();
            if clean
                .chars()
                .any(|c| matches!(c.to_ascii_lowercase(), 'x' | 'z' | '?'))
            {
                return Err(Error::new(
                    span,
                    format!("x/z digits unsupported in decimal `{raw}`"),
                ));
            }
            value = clean.parse::<u64>().map_err(|_| {
                Error::new(span, format!("decimal literal `{raw}` overflows 64 bits"))
            })?;
        } else {
            let bpd = base.bits_per_digit();
            let digit_mask = (1u64 << bpd) - 1;
            let mut n_digits = 0u32;
            for ch in digits.chars() {
                if ch == '_' {
                    continue;
                }
                n_digits += 1;
                if n_digits * bpd > 64 {
                    return Err(Error::new(span, format!("literal `{raw}` exceeds 64 bits")));
                }
                value <<= bpd;
                x_mask <<= bpd;
                z_mask <<= bpd;
                match ch.to_ascii_lowercase() {
                    'x' => x_mask |= digit_mask,
                    'z' | '?' => z_mask |= digit_mask,
                    c => {
                        let d = c.to_digit(16).filter(|d| *d < (1 << bpd)).ok_or_else(|| {
                            Error::new(span, format!("digit `{c}` invalid for base in `{raw}`"))
                        })?;
                        value |= d as u64;
                    }
                }
            }
            if n_digits == 0 {
                return Err(Error::new(span, format!("literal `{raw}` has no digits")));
            }
        }
        if let Some(w) = width {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            value &= mask;
            x_mask &= mask;
            z_mask &= mask;
        }
        Ok(Literal {
            width,
            signed,
            base,
            value,
            x_mask,
            z_mask,
        })
    }

    /// Canonical source spelling. `?` digits are emitted as `z`.
    pub fn to_source(&self) -> String {
        match (self.width, self.base) {
            (None, Base::Dec) if !self.signed => format!("{}", self.value),
            _ => {
                let w = self.width.map(|w| w.to_string()).unwrap_or_default();
                let s = if self.signed { "s" } else { "" };
                let b = self.base.letter();
                format!("{w}'{s}{b}{}", self.digits_to_source())
            }
        }
    }

    fn digits_to_source(&self) -> String {
        if self.base == Base::Dec {
            return format!("{}", self.value);
        }
        let bpd = self.base.bits_per_digit();
        // Sized literals print their full declared width (leading zeros
        // kept); unsized ones print the minimal digits covering the value.
        let n_digits = match self.width {
            Some(w) => w.div_ceil(bpd).max(1),
            None => {
                let all = self.value | self.x_mask | self.z_mask;
                let used_bits = (64 - all.leading_zeros()).max(1);
                used_bits.div_ceil(bpd)
            }
        };
        let mut out = String::new();
        for i in (0..n_digits).rev() {
            let shift = i * bpd;
            let digit_mask = ((1u64 << bpd) - 1) << shift;
            if self.x_mask & digit_mask != 0 {
                out.push('x');
            } else if self.z_mask & digit_mask != 0 {
                out.push('z');
            } else {
                let d = (self.value & digit_mask) >> shift;
                out.push(char::from_digit(d as u32, 16).expect("digit in range"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(raw: &str) -> Literal {
        Literal::parse(raw, Span::point(0)).expect("parse literal")
    }

    #[test]
    fn parses_bare_decimal() {
        let l = lit("42");
        assert_eq!(l.value, 42);
        assert_eq!(l.width, None);
        assert_eq!(l.base, Base::Dec);
        assert_eq!(l.to_source(), "42");
    }

    #[test]
    fn parses_sized_binary() {
        let l = lit("4'b1010");
        assert_eq!(l.width, Some(4));
        assert_eq!(l.value, 0b1010);
        assert_eq!(l.to_source(), "4'b1010");
    }

    #[test]
    fn parses_hex_with_underscores() {
        let l = lit("16'hDE_AD");
        assert_eq!(l.value, 0xDEAD);
        assert_eq!(l.to_source(), "16'hdead");
    }

    #[test]
    fn parses_signed_literal() {
        let l = lit("4'sd3");
        assert!(l.signed);
        assert_eq!(l.value, 3);
        assert_eq!(l.to_source(), "4'sd3");
    }

    #[test]
    fn parses_x_and_z_digits() {
        let l = lit("4'b1x0z");
        assert_eq!(l.value, 0b1000);
        assert_eq!(l.x_mask, 0b0100);
        assert_eq!(l.z_mask, 0b0001);
        assert_eq!(l.to_source(), "4'b1x0z");
    }

    #[test]
    fn question_mark_becomes_z() {
        let l = lit("3'b1?1");
        assert_eq!(l.z_mask, 0b010);
        assert_eq!(l.to_source(), "3'b1z1");
        // Round trip is stable.
        assert_eq!(lit(&l.to_source()), l);
    }

    #[test]
    fn rejects_oversized_width() {
        assert!(Literal::parse("65'h0", Span::point(0)).is_err());
        assert!(Literal::parse("0'b0", Span::point(0)).is_err());
    }

    #[test]
    fn rejects_overflowing_hex() {
        assert!(Literal::parse("'hFFFF_FFFF_FFFF_FFFF_F", Span::point(0)).is_err());
    }

    #[test]
    fn width_masks_value() {
        let l = lit("4'hFF");
        assert_eq!(l.value, 0xF);
    }

    #[test]
    fn hex_round_trip_values() {
        for raw in [
            "8'hff",
            "8'h0f",
            "12'o777",
            "1'b1",
            "64'hffff_ffff_ffff_ffff",
        ] {
            let l = lit(raw);
            let printed = l.to_source();
            assert_eq!(lit(&printed), l, "round trip {raw} -> {printed}");
        }
    }

    #[test]
    fn collect_idents_walks_everything() {
        let e = Expr::Ternary(
            Box::new(Expr::ident("sel")),
            Box::new(Expr::Bit("a".into(), Box::new(Expr::ident("i")))),
            Box::new(Expr::Concat(vec![Expr::ident("b"), Expr::ident("c")])),
        );
        let mut ids = Vec::new();
        e.collect_idents(&mut ids);
        assert_eq!(ids, vec!["sel", "a", "i", "b", "c"]);
    }

    #[test]
    fn written_names_of_concat_lvalue() {
        let lv = LValue::Concat(vec![
            LValue::Ident("hi".into()),
            LValue::Bit("lo".into(), Box::new(Expr::unsized_dec(0))),
        ]);
        assert_eq!(lv.written_names(), vec!["hi", "lo"]);
    }
}
