//! Lexical tokens for the Verilog subset.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Verilog keywords recognized by the lexer.
///
/// The set covers the synthesizable subset plus the handful of extra
/// constructs the paper's Fig.-3 "extra keywords" list calls out
/// (`negedge`, `endmodule`, `casez`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants mirror the Verilog keywords one-to-one
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Genvar,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    While,
    Repeat,
    Forever,
    Posedge,
    Negedge,
    Or,
    Signed,
    Generate,
    Endgenerate,
    Function,
    Endfunction,
    Task,
    Endtask,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not std::str::FromStr
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "integer" => Integer,
            "genvar" => Genvar,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "assign" => Assign,
            "always" => Always,
            "initial" => Initial,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "casex" => Casex,
            "endcase" => Endcase,
            "default" => Default,
            "for" => For,
            "while" => While,
            "repeat" => Repeat,
            "forever" => Forever,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "signed" => Signed,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "function" => Function,
            "endfunction" => Endfunction,
            "task" => Task,
            "endtask" => Endtask,
            _ => return None,
        })
    }

    /// The canonical source spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Reg => "reg",
            Integer => "integer",
            Genvar => "genvar",
            Parameter => "parameter",
            Localparam => "localparam",
            Assign => "assign",
            Always => "always",
            Initial => "initial",
            Begin => "begin",
            End => "end",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Casex => "casex",
            Endcase => "endcase",
            Default => "default",
            For => "for",
            While => "while",
            Repeat => "repeat",
            Forever => "forever",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            Signed => "signed",
            Generate => "generate",
            Endgenerate => "endgenerate",
            Function => "function",
            Endfunction => "endfunction",
            Task => "task",
            Endtask => "endtask",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexical token, together with any payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// A reserved word such as `module` or `posedge`.
    Keyword(Keyword),
    /// An identifier (simple or escaped).
    Ident(String),
    /// A system identifier such as `$signed` (the `$` is included).
    SysIdent(String),
    /// Any numeric literal, kept as its raw spelling (`8'hFF`, `42`, …).
    Number(String),
    /// A string literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `#`
    Hash,
    /// `?`
    Question,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `**`
    Power,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~&`
    TildeAmp,
    /// `~|`
    TildePipe,
    /// `~^` or `^~`
    TildeCaret,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `===`
    EqEqEq,
    /// `!==`
    BangEqEq,
    /// `<`
    Lt,
    /// `<=` (also the non-blocking assignment operator)
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
    /// `+:` (indexed part-select, ascending)
    PlusColon,
    /// `-:` (indexed part-select, descending)
    MinusColon,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// The source spelling for fixed-spelling tokens; payload-carrying
    /// kinds return their payload text.
    pub fn text(&self) -> String {
        use TokenKind::*;
        match self {
            Keyword(k) => k.as_str().to_string(),
            Ident(s) => s.clone(),
            SysIdent(s) => s.clone(),
            Number(s) => s.clone(),
            Str(s) => format!("\"{s}\""),
            LParen => "(".into(),
            RParen => ")".into(),
            LBracket => "[".into(),
            RBracket => "]".into(),
            LBrace => "{".into(),
            RBrace => "}".into(),
            Semi => ";".into(),
            Comma => ",".into(),
            Colon => ":".into(),
            Dot => ".".into(),
            At => "@".into(),
            Hash => "#".into(),
            Question => "?".into(),
            Assign => "=".into(),
            Plus => "+".into(),
            Minus => "-".into(),
            Star => "*".into(),
            Slash => "/".into(),
            Percent => "%".into(),
            Power => "**".into(),
            Bang => "!".into(),
            Tilde => "~".into(),
            Amp => "&".into(),
            Pipe => "|".into(),
            Caret => "^".into(),
            TildeAmp => "~&".into(),
            TildePipe => "~|".into(),
            TildeCaret => "~^".into(),
            AmpAmp => "&&".into(),
            PipePipe => "||".into(),
            EqEq => "==".into(),
            BangEq => "!=".into(),
            EqEqEq => "===".into(),
            BangEqEq => "!==".into(),
            Lt => "<".into(),
            Le => "<=".into(),
            Gt => ">".into(),
            Ge => ">=".into(),
            Shl => "<<".into(),
            Shr => ">>".into(),
            AShl => "<<<".into(),
            AShr => ">>>".into(),
            PlusColon => "+:".into(),
            MinusColon => "-:".into(),
            Eof => String::new(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text())
    }
}

/// A lexical token with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it sits in the source text.
    pub span: Span,
}

impl Token {
    /// Creates a token of `kind` at `span`.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Self { kind, span }
    }

    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(k) if *k == kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for s in ["module", "endmodule", "posedge", "casez", "localparam"] {
            let kw = Keyword::from_str(s).expect("keyword");
            assert_eq!(kw.as_str(), s);
        }
    }

    #[test]
    fn non_keyword_is_none() {
        assert_eq!(Keyword::from_str("modules"), None);
        assert_eq!(Keyword::from_str(""), None);
        assert_eq!(
            Keyword::from_str("Module"),
            None,
            "keywords are case-sensitive"
        );
    }

    #[test]
    fn token_kind_text_round_trip() {
        assert_eq!(TokenKind::Le.text(), "<=");
        assert_eq!(TokenKind::AShr.text(), ">>>");
        assert_eq!(TokenKind::Number("4'b1010".into()).text(), "4'b1010");
        assert_eq!(TokenKind::Ident("clk".into()).text(), "clk");
    }
}
