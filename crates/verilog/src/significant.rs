//! Extraction of *syntactically significant tokens* (paper §III-C, Fig. 3).
//!
//! The paper identifies significant tokens in two steps:
//!
//! 1. **AST keywords** — leaf nodes and information-carrying non-terminals
//!    harvested from the parse tree (identifiers and numeric literals:
//!    `data_register`, `clk`, `3`, …).
//! 2. **Extra keywords** — a fixed list of common Verilog constructs
//!    (`module`, `endmodule`, `reg`, `case`, `endcase`, `posedge`, …).
//!
//! Their union drives the `[FRAG]` segmentation implemented in
//! [`crate::fragment`].

use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The set of syntactically significant tokens for one or more modules.
///
/// Identifiers and literal spellings are collected from the AST;
/// reserved words and structural operators are implicitly significant and
/// are checked by [`SignificantTokens::is_significant_text`] without being
/// stored.
///
/// # Examples
///
/// ```
/// use verispec_verilog::{parse, significant::SignificantTokens};
/// let f = parse("module m(input clk, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule")?;
/// let sig = SignificantTokens::from_source_file(&f);
/// assert!(sig.contains_ident("clk"));
/// assert!(sig.contains_ident("q"));
/// assert!(sig.is_significant_text("posedge"));
/// assert!(!sig.is_significant_text(","));
/// # Ok::<(), verispec_verilog::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignificantTokens {
    idents: BTreeSet<String>,
}

impl SignificantTokens {
    /// Builds the set from every module in a source file.
    pub fn from_source_file(file: &SourceFile) -> Self {
        let mut s = Self::default();
        for m in &file.modules {
            s.add_module(m);
        }
        s
    }

    /// Builds the set from a single module.
    pub fn from_module(module: &Module) -> Self {
        let mut s = Self::default();
        s.add_module(module);
        s
    }

    /// Adds every identifier the module declares or references.
    pub fn add_module(&mut self, m: &Module) {
        self.idents.insert(m.name.clone());
        for p in &m.params {
            self.idents.insert(p.name.clone());
            self.add_expr(&p.value);
            if let Some(r) = &p.range {
                self.add_range(r);
            }
        }
        for p in &m.ports {
            self.idents.insert(p.name.clone());
            if let Some(r) = &p.range {
                self.add_range(r);
            }
        }
        for item in &m.items {
            self.add_item(item);
        }
    }

    fn add_item(&mut self, item: &Item) {
        match item {
            Item::Net(nd) => {
                if let Some(r) = &nd.range {
                    self.add_range(r);
                }
                for (name, init) in &nd.nets {
                    self.idents.insert(name.clone());
                    if let Some(e) = init {
                        self.add_expr(e);
                    }
                }
            }
            Item::Reg(rd) => {
                if let Some(r) = &rd.range {
                    self.add_range(r);
                }
                for rv in &rd.regs {
                    self.idents.insert(rv.name.clone());
                    if let Some(mem) = &rv.mem {
                        self.add_range(mem);
                    }
                    if let Some(init) = &rv.init {
                        self.add_expr(init);
                    }
                }
            }
            Item::Integer(names) | Item::Genvar(names) => {
                self.idents.extend(names.iter().cloned());
            }
            Item::Param(decls) | Item::Localparam(decls) => {
                for d in decls {
                    self.idents.insert(d.name.clone());
                    self.add_expr(&d.value);
                    if let Some(r) = &d.range {
                        self.add_range(r);
                    }
                }
            }
            Item::Assign(assigns) => {
                for (lhs, rhs) in assigns {
                    self.add_lvalue(lhs);
                    self.add_expr(rhs);
                }
            }
            Item::Always(ab) => {
                if let Sensitivity::List(evs) = &ab.sensitivity {
                    for ev in evs {
                        self.idents.insert(ev.signal.clone());
                    }
                }
                self.add_stmt(&ab.body);
            }
            Item::Initial(body) => self.add_stmt(body),
            Item::Instance(inst) => {
                self.idents.insert(inst.module.clone());
                self.idents.insert(inst.name.clone());
                for c in inst.params.iter().chain(&inst.conns) {
                    match c {
                        Connection::Ordered(e) => self.add_expr(e),
                        Connection::Named(port, e) => {
                            self.idents.insert(port.clone());
                            if let Some(e) = e {
                                self.add_expr(e);
                            }
                        }
                    }
                }
            }
            Item::PortDecl(pd) => {
                self.idents.extend(pd.names.iter().cloned());
                if let Some(r) = &pd.range {
                    self.add_range(r);
                }
            }
        }
    }

    fn add_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Block { label, stmts } => {
                if let Some(l) = label {
                    self.idents.insert(l.clone());
                }
                for s in stmts {
                    self.add_stmt(s);
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.add_expr(cond);
                self.add_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.add_stmt(e);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                ..
            } => {
                self.add_expr(scrutinee);
                for arm in arms {
                    for l in &arm.labels {
                        self.add_expr(l);
                    }
                    self.add_stmt(&arm.body);
                }
                if let Some(d) = default {
                    self.add_stmt(d);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.add_stmt(init);
                self.add_expr(cond);
                self.add_stmt(step);
                self.add_stmt(body);
            }
            Stmt::While { cond, body } | Stmt::Repeat { count: cond, body } => {
                self.add_expr(cond);
                self.add_stmt(body);
            }
            Stmt::Blocking { lhs, rhs } | Stmt::NonBlocking { lhs, rhs } => {
                self.add_lvalue(lhs);
                self.add_expr(rhs);
            }
            Stmt::Null => {}
        }
    }

    fn add_lvalue(&mut self, lv: &LValue) {
        match lv {
            LValue::Ident(n) => {
                self.idents.insert(n.clone());
            }
            LValue::Bit(n, i) => {
                self.idents.insert(n.clone());
                self.add_expr(i);
            }
            LValue::Part(n, r) => {
                self.idents.insert(n.clone());
                self.add_range(r);
            }
            LValue::IndexedPart {
                name, base, width, ..
            } => {
                self.idents.insert(name.clone());
                self.add_expr(base);
                self.add_expr(width);
            }
            LValue::Concat(parts) => {
                for p in parts {
                    self.add_lvalue(p);
                }
            }
        }
    }

    fn add_expr(&mut self, e: &Expr) {
        let mut ids = Vec::new();
        e.collect_idents(&mut ids);
        for id in ids {
            self.idents.insert(id.to_string());
        }
    }

    fn add_range(&mut self, r: &Range) {
        self.add_expr(&r.msb);
        self.add_expr(&r.lsb);
    }

    /// Whether `name` was harvested from the AST.
    pub fn contains_ident(&self, name: &str) -> bool {
        self.idents.contains(name)
    }

    /// Number of distinct identifiers harvested.
    pub fn len(&self) -> usize {
        self.idents.len()
    }

    /// Whether no identifiers were harvested.
    pub fn is_empty(&self) -> bool {
        self.idents.is_empty()
    }

    /// Iterates over the harvested identifiers in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.idents.iter().map(String::as_str)
    }

    /// Whether a raw token spelling is significant under this set.
    ///
    /// Keywords, numeric literals, and the assignment operators are
    /// significant unconditionally (the paper's "extra keywords" plus the
    /// operators its Fig.-3 example wraps); identifiers are significant
    /// when they appear in the harvested set.
    pub fn is_significant_text(&self, text: &str) -> bool {
        if crate::token::Keyword::from_str(text).is_some() {
            return true;
        }
        if matches!(text, "=" | "<=") {
            return true;
        }
        if text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '\'')
        {
            return true;
        }
        self.contains_ident(text)
    }
}

/// The paper's "extra keywords" — constructs that are always significant
/// regardless of whether they appear in a particular AST.
///
/// Exposed for documentation and tests; [`SignificantTokens`] treats every
/// reserved word as significant.
pub const EXTRA_KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "integer",
    "parameter",
    "localparam",
    "assign",
    "always",
    "initial",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "casez",
    "casex",
    "endcase",
    "default",
    "for",
    "while",
    "posedge",
    "negedge",
    "signed",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sig_for(src: &str) -> SignificantTokens {
        SignificantTokens::from_source_file(&parse(src).expect("parse"))
    }

    #[test]
    fn collects_fig3_style_tokens() {
        // The paper's Fig. 3 example.
        let sig = sig_for(
            "module data_register(
               input clk,
               input [3:0] data_in,
               output reg [3:0] data_out
             );
               always @(posedge clk) begin
                 data_out <= data_in;
               end
             endmodule",
        );
        for id in ["data_register", "clk", "data_in", "data_out"] {
            assert!(sig.contains_ident(id), "missing {id}");
        }
        // Extra keywords and numbers are significant without being stored.
        assert!(sig.is_significant_text("module"));
        assert!(sig.is_significant_text("posedge"));
        assert!(sig.is_significant_text("3"));
        assert!(sig.is_significant_text("<="));
        assert!(!sig.is_significant_text(","));
        assert!(!sig.is_significant_text("@"));
        assert!(!sig.is_significant_text("unrelated_name"));
    }

    #[test]
    fn collects_from_instances_and_params() {
        let sig = sig_for(
            "module top #(parameter W = 4)(input a, output y);
               sub #(.W(W)) u_sub (.x(a), .z(y));
             endmodule",
        );
        for id in ["top", "W", "sub", "u_sub", "x", "z", "a", "y"] {
            assert!(sig.contains_ident(id), "missing {id}");
        }
    }

    #[test]
    fn collects_from_case_and_loops() {
        let sig = sig_for(
            "module f(input [1:0] s, output reg [3:0] y);
               integer i;
               always @(*) begin
                 case (s)
                   2'b00: y = 4'h1;
                   default: for (i = 0; i < 4; i = i + 1) y[i] = s[0];
                 endcase
               end
             endmodule",
        );
        for id in ["f", "s", "y", "i"] {
            assert!(sig.contains_ident(id), "missing {id}");
        }
    }

    #[test]
    fn extra_keywords_are_all_reserved_words() {
        for kw in EXTRA_KEYWORDS {
            assert!(
                crate::token::Keyword::from_str(kw).is_some(),
                "{kw} must be a lexer keyword"
            );
        }
    }

    #[test]
    fn iter_is_sorted_and_len_matches() {
        let sig = sig_for("module m(input b, a, output c); assign c = a | b; endmodule");
        let v: Vec<&str> = sig.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted);
        assert_eq!(sig.len(), v.len());
        assert!(!sig.is_empty());
    }
}
