//! Byte-offset source spans.

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` into the original source text.
///
/// Spans are attached to tokens and errors so that diagnostics can point
/// back into the exact slice of Verilog that produced them.
///
/// # Examples
///
/// ```
/// use verispec_verilog::Span;
/// let s = Span::new(4, 10);
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.slice("module top; endmodule"), "le top");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Self { start, end }
    }

    /// A zero-width span at `pos`, used for end-of-input diagnostics.
    pub fn point(pos: usize) -> Self {
        Self {
            start: pos,
            end: pos,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns the source slice this span points at.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `src`.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(3).is_empty());
        assert!(!Span::new(3, 4).is_empty());
    }

    #[test]
    fn slice_extracts_text() {
        let src = "assign y = a;";
        assert_eq!(Span::new(7, 8).slice(src), "y");
    }
}
