//! Verilog front-end for VeriSpec: lexer, parser, AST, pretty-printer,
//! syntax checking, and the paper's syntactic-fragment pipeline.
//!
//! This crate is the stand-in for the *Stagira* incremental Verilog parser
//! used by the paper (§III-A). It covers the synthesizable RTL subset that
//! the VeriSpec corpus generators emit and that the behavioral simulator
//! (`verispec-sim`) executes:
//!
//! * modules with ANSI or non-ANSI port declarations,
//! * `wire`/`reg`/`integer`/`parameter`/`localparam` declarations
//!   (including memories),
//! * continuous assignments,
//! * `always` / `initial` processes with `begin`/`end`, `if`, `case*`,
//!   `for`, `while`, and blocking / non-blocking assignments,
//! * module instantiation (ordered and named connections),
//! * the full Verilog expression grammar (ternary, reductions, shifts,
//!   concatenation, replication, bit/part selects, based literals).
//!
//! On top of the front-end it implements the paper's Fig.-3 pipeline:
//! extracting **syntactically significant tokens** from the AST
//! ([`significant`]) and segmenting source text into fragments delimited by
//! the `[FRAG]` marker ([`fragment`]).
//!
//! # Examples
//!
//! ```
//! use verispec_verilog::{parse, fragment::fragmentize, significant::SignificantTokens};
//!
//! let src = "module inv(input a, output y); assign y = ~a; endmodule";
//! let file = parse(src)?;
//! assert_eq!(file.modules[0].name, "inv");
//!
//! let sig = SignificantTokens::from_source_file(&file);
//! let tagged = fragmentize(src, &sig)?;
//! assert!(tagged.contains("[FRAG]module[FRAG]"));
//! # Ok::<(), verispec_verilog::Error>(())
//! ```

#![deny(missing_docs)]

pub mod ast;
pub mod check;
pub mod fragment;
pub mod interface;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod significant;
pub mod span;
pub mod token;

pub use ast::{Module, SourceFile};
pub use check::{structure_ok, syntax_check};
pub use lexer::lex;
pub use parser::parse;
pub use printer::print_source_file;
pub use span::Span;
pub use token::{Keyword, Token, TokenKind};

use std::fmt;

/// Errors produced by the Verilog front-end.
///
/// Carries a byte-offset [`Span`] into the original source plus a
/// human-readable message, so callers can point at the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Location of the error in the input source.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Error {
    /// Creates a new error covering `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Self {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at bytes {}..{}",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
