//! `[FRAG]` segmentation of Verilog source text (paper §III-C, Fig. 3).
//!
//! Each syntactically significant token is wrapped in `[FRAG]` markers;
//! everything between two markers is a *fragment* that is safe to treat as
//! an atomic unit during decoding. The speculative decoder's integrity
//! check truncates committed tokens at the last fragment boundary, which
//! is what keeps every decoding step syntactically complete (Fig. 5).

use crate::lexer::lex_full;
use crate::significant::SignificantTokens;
use crate::token::TokenKind;
use crate::Result;

/// The fragment-boundary marker inserted between significant tokens.
pub const FRAG_MARKER: &str = "[FRAG]";

/// Wraps every significant token of `src` in [`FRAG_MARKER`]s.
///
/// Whitespace and comments between tokens are preserved verbatim, so
/// [`defragmentize`] restores the original text exactly.
///
/// In addition to the token classes reported by
/// [`SignificantTokens::is_significant_text`], the module header's port
/// list delimiters `(`, `)` and the header's closing `;` are wrapped,
/// matching the paper's Fig.-3 example
/// (`[FRAG]module[FRAG] [FRAG]mux2to1[FRAG] [FRAG]([FRAG]`).
///
/// # Errors
///
/// Returns an error if `src` fails to lex.
///
/// # Examples
///
/// ```
/// use verispec_verilog::{parse, fragment, significant::SignificantTokens};
/// let src = "module inv(input a, output y);\n  assign y = ~a;\nendmodule";
/// let sig = SignificantTokens::from_source_file(&parse(src)?);
/// let tagged = fragment::fragmentize(src, &sig)?;
/// assert!(tagged.starts_with("[FRAG]module[FRAG]"));
/// assert_eq!(fragment::defragmentize(&tagged), src);
/// # Ok::<(), verispec_verilog::Error>(())
/// ```
pub fn fragmentize(src: &str, sig: &SignificantTokens) -> Result<String> {
    let out = lex_full(src)?;
    let mut result = String::with_capacity(src.len() * 2);
    let mut prev_end = 0usize;

    // Tiny state machine for the module header:
    // `module IDENT [#( ... )] ( ... ) ;`
    // so the port-list parens and the header's closing semicolon are
    // wrapped like the paper's example. The `#(...)` parameter list is
    // tracked so its parens are *not* mistaken for the port list.
    #[derive(PartialEq)]
    enum Header {
        Idle,
        SawModule,
        SawName,
        SawHash,
        InParams(u32),
        InPorts(u32),
        AfterPorts,
    }
    let mut header = Header::Idle;

    for tok in &out.tokens {
        if tok.kind == TokenKind::Eof {
            break;
        }
        // Preserve inter-token text (whitespace and comments).
        result.push_str(&src[prev_end..tok.span.start]);
        prev_end = tok.span.end;
        let text = tok.span.slice(src);

        let structural = match (&header, &tok.kind) {
            (Header::SawModule, TokenKind::Ident(_)) => {
                header = Header::SawName;
                false
            }
            (Header::SawName, TokenKind::Hash) => {
                header = Header::SawHash;
                false
            }
            (Header::SawHash, TokenKind::LParen) => {
                header = Header::InParams(1);
                false
            }
            (Header::InParams(1), TokenKind::RParen) => {
                header = Header::SawName;
                false
            }
            (Header::InParams(d), TokenKind::LParen) => {
                header = Header::InParams(d + 1);
                false
            }
            (Header::InParams(d), TokenKind::RParen) => {
                header = Header::InParams(d - 1);
                false
            }
            (Header::SawName, TokenKind::LParen) => {
                header = Header::InPorts(1);
                true
            }
            (Header::InPorts(1), TokenKind::RParen) => {
                header = Header::AfterPorts;
                true
            }
            (Header::InPorts(d), TokenKind::LParen) => {
                header = Header::InPorts(d + 1);
                false
            }
            (Header::InPorts(d), TokenKind::RParen) => {
                header = Header::InPorts(d - 1);
                false
            }
            (Header::AfterPorts | Header::SawName, TokenKind::Semi) => {
                header = Header::Idle;
                true
            }
            _ => false,
        };
        if tok.kind == TokenKind::Keyword(crate::token::Keyword::Module) {
            header = Header::SawModule;
        }

        if structural || sig.is_significant_text(text) {
            result.push_str(FRAG_MARKER);
            result.push_str(text);
            result.push_str(FRAG_MARKER);
        } else {
            result.push_str(text);
        }
    }
    result.push_str(&src[prev_end..]);
    Ok(result)
}

/// Removes every [`FRAG_MARKER`] from `tagged`, restoring plain Verilog.
pub fn defragmentize(tagged: &str) -> String {
    tagged.replace(FRAG_MARKER, "")
}

/// Splits tagged text into fragments (the pieces between markers),
/// dropping empty pieces that arise from adjacent markers.
pub fn fragments(tagged: &str) -> Vec<&str> {
    tagged
        .split(FRAG_MARKER)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Number of fragment markers in `tagged`.
pub fn marker_count(tagged: &str) -> usize {
    tagged.matches(FRAG_MARKER).count()
}

/// Whether a *tagged* text prefix ends on a fragment boundary: at a
/// marker, optionally followed by non-significant filler (whitespace or
/// punctuation that belongs to the next fragment has not started if the
/// tail after the last marker is blank).
pub fn ends_on_boundary(tagged_prefix: &str) -> bool {
    match tagged_prefix.rfind(FRAG_MARKER) {
        None => tagged_prefix.trim().is_empty(),
        Some(idx) => tagged_prefix[idx + FRAG_MARKER.len()..].trim().is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const FIG3_SRC: &str = "module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule";

    fn tag(src: &str) -> String {
        let sig = SignificantTokens::from_source_file(&parse(src).expect("parse"));
        fragmentize(src, &sig).expect("fragmentize")
    }

    #[test]
    fn fig3_example_wraps_expected_tokens() {
        let tagged = tag(FIG3_SRC);
        for frag in [
            "[FRAG]module[FRAG]",
            "[FRAG]data_register[FRAG]",
            "[FRAG]([FRAG]",
            "[FRAG]input[FRAG]",
            "[FRAG]clk[FRAG]",
            "[FRAG]3[FRAG]",
            "[FRAG]data_in[FRAG]",
            "[FRAG]output[FRAG]",
            "[FRAG]reg[FRAG]",
            "[FRAG])[FRAG]",
            "[FRAG];[FRAG]",
            "[FRAG]always[FRAG]",
            "[FRAG]posedge[FRAG]",
            "[FRAG]begin[FRAG]",
            "[FRAG]<=[FRAG]",
            "[FRAG]end[FRAG]",
            "[FRAG]endmodule[FRAG]",
        ] {
            assert!(tagged.contains(frag), "expected {frag} in:\n{tagged}");
        }
        // The paper's example leaves commas and `@(` unwrapped.
        assert!(!tagged.contains("[FRAG],[FRAG]"));
        assert!(!tagged.contains("[FRAG]@[FRAG]"));
    }

    #[test]
    fn defragmentize_restores_source_exactly() {
        let tagged = tag(FIG3_SRC);
        assert_eq!(defragmentize(&tagged), FIG3_SRC);
    }

    #[test]
    fn preserves_comments_verbatim() {
        let src = "module m(input a, output y); // keep me\nassign y = a; /* and me */ endmodule";
        let tagged = tag(src);
        assert!(tagged.contains("// keep me"));
        assert!(tagged.contains("/* and me */"));
        assert_eq!(defragmentize(&tagged), src);
    }

    #[test]
    fn inner_parens_are_not_structural() {
        let src = "module m(input a, b, output y); assign y = (a & b) | a; endmodule";
        let tagged = tag(src);
        // The expression parens stay unwrapped: exactly one wrapped lparen
        // (the port list's) in the whole module.
        assert_eq!(tagged.matches("[FRAG]([FRAG]").count(), 1, "{tagged}");
        assert!(
            tagged.contains("([FRAG]a[FRAG]"),
            "expression lparen should be bare: {tagged}"
        );
        assert!(tagged.contains("[FRAG])[FRAG][FRAG];[FRAG]"));
    }

    #[test]
    fn parameter_header_ports_still_wrap() {
        let src =
            "module m #(parameter W = 4)(input [W-1:0] a, output y); assign y = a[0]; endmodule";
        let tagged = tag(src);
        assert_eq!(defragmentize(&tagged), src);
        assert!(tagged.contains("[FRAG]W[FRAG]"));
        // The parameter-list parens stay bare; the port-list lparen wraps.
        assert!(
            tagged.contains("#("),
            "param lparen must stay bare: {tagged}"
        );
        assert!(
            tagged.contains(")[FRAG]([FRAG]"),
            "port lparen must wrap: {tagged}"
        );
    }

    #[test]
    fn fragments_split_and_count() {
        let tagged = tag("module m(input a, output y); assign y = a; endmodule");
        let frags = fragments(&tagged);
        assert!(frags.contains(&"module"));
        assert!(frags.contains(&"assign"));
        assert!(marker_count(&tagged) >= 2 * 6);
    }

    #[test]
    fn boundary_detection() {
        assert!(ends_on_boundary("[FRAG]module[FRAG]"));
        assert!(ends_on_boundary("[FRAG]module[FRAG] "));
        assert!(!ends_on_boundary("[FRAG]module[FRAG] [FRAG]da"));
        assert!(!ends_on_boundary("[FRAG]mod"));
        assert!(ends_on_boundary("   "));
        assert!(ends_on_boundary(""));
    }

    #[test]
    fn numbers_are_always_wrapped() {
        let tagged = tag("module m(output [7:0] y); assign y = 8'hAB; endmodule");
        assert!(tagged.contains("[FRAG]8'hAB[FRAG]"));
        assert!(tagged.contains("[FRAG]7[FRAG]"));
        assert!(tagged.contains("[FRAG]0[FRAG]"));
    }
}
