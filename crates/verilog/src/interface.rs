//! Module interface summaries: resolved port directions and widths.
//!
//! This is the front-end-only view of what a testbench needs to know to
//! instantiate a module — the same information `verispec-sim`'s
//! elaborator computes, but available without building an executable
//! design (useful for corpus statistics, prompt construction, and
//! external tooling). Widths are resolved through `parameter` /
//! `localparam` bindings with constant expressions; non-constant ranges
//! yield [`PortWidth::Unresolved`].

use crate::ast::{Direction, Expr, Item, Module, NetKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The width of a summarized port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortWidth {
    /// Resolved to a constant bit count.
    Bits(u32),
    /// Range depends on something the front end cannot fold.
    Unresolved,
}

impl PortWidth {
    /// The bit count, if resolved.
    pub fn bits(&self) -> Option<u32> {
        match self {
            PortWidth::Bits(b) => Some(*b),
            PortWidth::Unresolved => None,
        }
    }
}

/// One summarized port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortInfo {
    /// Port name.
    pub name: String,
    /// Declared direction.
    pub dir: Direction,
    /// Resolved width.
    pub width: PortWidth,
    /// Whether declared as `reg`.
    pub is_reg: bool,
    /// Whether declared `signed`.
    pub signed: bool,
}

/// A module's interface summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterfaceSummary {
    /// Module name.
    pub module: String,
    /// Ports in declaration order (ANSI and non-ANSI merged).
    pub ports: Vec<PortInfo>,
}

impl InterfaceSummary {
    /// Ports with the given direction.
    pub fn by_dir(&self, dir: Direction) -> impl Iterator<Item = &PortInfo> {
        self.ports.iter().filter(move |p| p.dir == dir)
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&PortInfo> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Likely clock inputs (1-bit inputs named like clocks).
    pub fn clock_candidates(&self) -> Vec<&str> {
        self.by_dir(Direction::Input)
            .filter(|p| p.width == PortWidth::Bits(1))
            .filter(|p| {
                let n = p.name.to_ascii_lowercase();
                n == "clk" || n == "clock" || n.starts_with("clk_") || n.ends_with("_clk")
            })
            .map(|p| p.name.as_str())
            .collect()
    }
}

/// Summarizes a module's interface; see the module docs.
///
/// # Errors
///
/// Returns an error message if a port in the list never receives a
/// direction (a non-ANSI port with no body declaration).
pub fn summarize_interface(module: &Module) -> Result<InterfaceSummary, String> {
    // Constant environment from parameters/localparams (best effort).
    let mut env: HashMap<&str, u64> = HashMap::new();
    for p in &module.params {
        if let Some(v) = const_fold(&p.value, &env) {
            env.insert(&p.name, v);
        }
    }
    for item in &module.items {
        if let Item::Param(decls) | Item::Localparam(decls) = item {
            for d in decls {
                if let Some(v) = const_fold(&d.value, &env) {
                    env.insert(&d.name, v);
                }
            }
        }
    }

    // Merge header ports with body PortDecls.
    struct Acc {
        dir: Option<Direction>,
        width: PortWidth,
        is_reg: bool,
        signed: bool,
    }
    let mut order: Vec<&str> = Vec::new();
    let mut acc: HashMap<&str, Acc> = HashMap::new();
    for p in &module.ports {
        order.push(&p.name);
        let width = match &p.range {
            None => PortWidth::Bits(1),
            Some(r) => range_width(&r.msb, &r.lsb, &env),
        };
        acc.insert(
            &p.name,
            Acc {
                dir: p.dir,
                width,
                is_reg: p.net == Some(NetKind::Reg),
                signed: p.signed,
            },
        );
    }
    for item in &module.items {
        match item {
            Item::PortDecl(pd) => {
                for name in &pd.names {
                    if let Some(a) = acc.get_mut(name.as_str()) {
                        a.dir = Some(pd.dir);
                        if pd.net == Some(NetKind::Reg) {
                            a.is_reg = true;
                        }
                        a.signed |= pd.signed;
                        if let Some(r) = &pd.range {
                            a.width = range_width(&r.msb, &r.lsb, &env);
                        }
                    }
                }
            }
            Item::Reg(rd) => {
                for rv in &rd.regs {
                    if let Some(a) = acc.get_mut(rv.name.as_str()) {
                        a.is_reg = true;
                        if let Some(r) = &rd.range {
                            a.width = range_width(&r.msb, &r.lsb, &env);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let mut ports = Vec::with_capacity(order.len());
    for name in order {
        let a = &acc[name];
        let dir = a
            .dir
            .ok_or_else(|| format!("port `{name}` has no direction declaration"))?;
        ports.push(PortInfo {
            name: name.to_string(),
            dir,
            width: a.width,
            is_reg: a.is_reg,
            signed: a.signed,
        });
    }
    Ok(InterfaceSummary {
        module: module.name.clone(),
        ports,
    })
}

fn range_width(msb: &Expr, lsb: &Expr, env: &HashMap<&str, u64>) -> PortWidth {
    match (const_fold(msb, env), const_fold(lsb, env)) {
        (Some(m), Some(l)) => {
            let (hi, lo) = if m >= l { (m, l) } else { (l, m) };
            let w = hi - lo + 1;
            if (1..=64).contains(&w) {
                PortWidth::Bits(w as u32)
            } else {
                PortWidth::Unresolved
            }
        }
        _ => PortWidth::Unresolved,
    }
}

/// Best-effort constant folding over the expression subset used in port
/// ranges (`W-1`, `2*SIZE-1`, literals, parameters).
fn const_fold(e: &Expr, env: &HashMap<&str, u64>) -> Option<u64> {
    use crate::ast::BinaryOp::*;
    match e {
        Expr::Number(l) => (!l.has_xz()).then_some(l.value),
        Expr::Ident(n) => env.get(n.as_str()).copied(),
        Expr::Binary(op, a, b) => {
            let x = const_fold(a, env)?;
            let y = const_fold(b, env)?;
            Some(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => x.checked_div(y)?,
                Mod => x.checked_rem(y)?,
                Shl => x.checked_shl(y.min(63) as u32)?,
                Shr => x >> y.min(63),
                _ => return None,
            })
        }
        Expr::Unary(crate::ast::UnaryOp::Plus, a) => const_fold(a, env),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn summary(src: &str) -> InterfaceSummary {
        let f = parse(src).expect("parse");
        summarize_interface(&f.modules[0]).expect("summary")
    }

    #[test]
    fn ansi_ports_with_widths() {
        let s = summary(
            "module m(input clk, input [7:0] d, output reg [3:0] q, output signed [1:0] z);
             endmodule",
        );
        assert_eq!(s.module, "m");
        assert_eq!(s.port("clk").expect("clk").width, PortWidth::Bits(1));
        assert_eq!(s.port("d").expect("d").width, PortWidth::Bits(8));
        let q = s.port("q").expect("q");
        assert!(q.is_reg);
        assert_eq!(q.dir, Direction::Output);
        assert!(s.port("z").expect("z").signed);
    }

    #[test]
    fn parameterized_widths_resolve() {
        let s = summary(
            "module p #(parameter W = 8, D = 2)(input [W-1:0] a, output [W*D-1:0] y);
             endmodule",
        );
        assert_eq!(s.port("a").expect("a").width, PortWidth::Bits(8));
        assert_eq!(s.port("y").expect("y").width, PortWidth::Bits(16));
    }

    #[test]
    fn localparam_derived_width() {
        let s = summary(
            "module lp(input [HALF-1:0] a, output y);
               localparam FULL = 8;
               localparam HALF = FULL / 2;
               assign y = a[0];
             endmodule",
        );
        // HALF is declared after use in source order but parameters are
        // folded before ports are resolved... localparams come from the
        // body scan, which runs before resolution too.
        assert_eq!(s.port("a").expect("a").width, PortWidth::Bits(4));
    }

    #[test]
    fn non_ansi_merge() {
        let s = summary(
            "module n(a, b, q);
               input a, b;
               output q;
               reg q;
               assign a_unused = 0;
             endmodule",
        );
        assert_eq!(s.port("a").expect("a").dir, Direction::Input);
        let q = s.port("q").expect("q");
        assert_eq!(q.dir, Direction::Output);
        assert!(q.is_reg, "body reg declaration upgrades the port");
    }

    #[test]
    fn missing_direction_is_error() {
        let f = parse("module bad(a); endmodule").expect("parse");
        assert!(summarize_interface(&f.modules[0]).is_err());
    }

    #[test]
    fn unresolved_width_reported() {
        let s = summary("module u #(parameter W = 4)(input [W+X:0] a, output y); endmodule");
        assert_eq!(s.port("a").expect("a").width, PortWidth::Unresolved);
        assert!(s.port("a").expect("a").width.bits().is_none());
    }

    #[test]
    fn clock_candidates_heuristic() {
        let s = summary(
            "module c(input clk, input sys_clk, input [1:0] clk_bus, input data, output y);
             endmodule",
        );
        let clocks = s.clock_candidates();
        assert!(clocks.contains(&"clk"));
        assert!(clocks.contains(&"sys_clk"));
        assert!(
            !clocks.contains(&"clk_bus"),
            "multi-bit signals are not clocks"
        );
        assert!(!clocks.contains(&"data"));
    }
}
