//! Hand-written lexer for the Verilog subset.
//!
//! The lexer skips whitespace and comments but records how many bytes of
//! comment text it saw, which the dataset pipeline uses to filter files
//! that "primarily consist of comments" (paper §III-A).

use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};
use crate::{Error, Result};

/// Output of [`lex_full`]: the token stream plus comment statistics.
#[derive(Debug, Clone)]
pub struct LexOutput {
    /// All tokens in source order, terminated by a single `Eof` token.
    pub tokens: Vec<Token>,
    /// Total bytes of comment text (both `//` and `/* */`).
    pub comment_bytes: usize,
    /// Total bytes in the input.
    pub total_bytes: usize,
}

impl LexOutput {
    /// Fraction of the input occupied by comments, in `[0, 1]`.
    pub fn comment_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.comment_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Lexes `src` into tokens, discarding comment statistics.
///
/// # Errors
///
/// Returns an error on unterminated block comments or strings, malformed
/// based literals, and bytes that are not part of the Verilog subset.
///
/// # Examples
///
/// ```
/// use verispec_verilog::{lex, TokenKind};
/// let toks = lex("assign y = 4'b1010;")?;
/// assert!(matches!(toks[0].kind, TokenKind::Keyword(_)));
/// assert!(matches!(toks[3].kind, TokenKind::Number(_)));
/// # Ok::<(), verispec_verilog::Error>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Ok(lex_full(src)?.tokens)
}

/// Lexes `src` and additionally reports comment statistics.
///
/// # Errors
///
/// Same conditions as [`lex`].
pub fn lex_full(src: &str) -> Result<LexOutput> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut tokens = Vec::new();
    let mut comment_bytes = 0usize;

    while pos < bytes.len() {
        let b = bytes[pos];
        // Whitespace.
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Line comment.
        if b == b'/' && bytes.get(pos + 1) == Some(&b'/') {
            let start = pos;
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            comment_bytes += pos - start;
            continue;
        }
        // Block comment.
        if b == b'/' && bytes.get(pos + 1) == Some(&b'*') {
            let start = pos;
            pos += 2;
            loop {
                if pos + 1 >= bytes.len() {
                    return Err(Error::new(
                        Span::new(start, bytes.len()),
                        "unterminated block comment",
                    ));
                }
                if bytes[pos] == b'*' && bytes[pos + 1] == b'/' {
                    pos += 2;
                    break;
                }
                pos += 1;
            }
            comment_bytes += pos - start;
            continue;
        }
        // Compiler directives (`timescale etc.): skip to end of line. The
        // corpus cleaner strips them, but raw GitHub-style files may carry
        // them; ignoring a directive keeps the rest of the file parseable.
        if b == b'`' {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }

        let start = pos;
        // Identifier or keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            while pos < bytes.len()
                && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_' || bytes[pos] == b'$')
            {
                pos += 1;
            }
            let text = &src[start..pos];
            // An apostrophe immediately after a decimal-less identifier is
            // impossible, so no lookahead is needed here.
            let kind = match Keyword::from_str(text) {
                Some(kw) => TokenKind::Keyword(kw),
                None => TokenKind::Ident(text.to_string()),
            };
            tokens.push(Token::new(kind, Span::new(start, pos)));
            continue;
        }
        // Escaped identifier: `\name ` (terminated by whitespace).
        if b == b'\\' {
            pos += 1;
            let id_start = pos;
            while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos == id_start {
                return Err(Error::new(
                    Span::new(start, pos),
                    "empty escaped identifier",
                ));
            }
            tokens.push(Token::new(
                TokenKind::Ident(src[id_start..pos].to_string()),
                Span::new(start, pos),
            ));
            continue;
        }
        // System identifier: $display, $signed, ...
        if b == b'$' {
            pos += 1;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            tokens.push(Token::new(
                TokenKind::SysIdent(src[start..pos].to_string()),
                Span::new(start, pos),
            ));
            continue;
        }
        // Numbers: decimal, or (sized) based literals such as 8'hFF, 'b01,
        // 4'sd3. An apostrophe may follow a decimal size.
        if b.is_ascii_digit() || b == b'\'' {
            pos = lex_number(src, pos)?;
            tokens.push(Token::new(
                TokenKind::Number(src[start..pos].to_string()),
                Span::new(start, pos),
            ));
            continue;
        }
        // Strings.
        if b == b'"' {
            pos += 1;
            let content_start = pos;
            while pos < bytes.len() && bytes[pos] != b'"' {
                if bytes[pos] == b'\\' {
                    pos += 1; // skip escaped char
                }
                pos += 1;
            }
            if pos >= bytes.len() {
                return Err(Error::new(
                    Span::new(start, pos),
                    "unterminated string literal",
                ));
            }
            let content = src[content_start..pos].to_string();
            pos += 1; // closing quote
            tokens.push(Token::new(TokenKind::Str(content), Span::new(start, pos)));
            continue;
        }

        // Non-ASCII bytes can only arrive from generated (not parsed)
        // text; report them char-boundary-safely instead of slicing.
        if !b.is_ascii() {
            let ch = src[pos..].chars().next().unwrap_or('\u{FFFD}');
            return Err(Error::new(
                Span::new(pos, pos + ch.len_utf8()),
                format!("unexpected character `{ch}`"),
            ));
        }

        // Operators and punctuation, longest match first.
        let rest = &src[pos..];
        let (kind, len) = match_operator(rest).ok_or_else(|| {
            Error::new(
                Span::new(pos, pos + 1),
                format!("unexpected character `{}`", b as char),
            )
        })?;
        pos += len;
        tokens.push(Token::new(kind, Span::new(start, pos)));
    }

    tokens.push(Token::new(TokenKind::Eof, Span::point(src.len())));
    Ok(LexOutput {
        tokens,
        comment_bytes,
        total_bytes: src.len(),
    })
}

/// Lexes a numeric literal starting at `pos`; returns the end offset.
fn lex_number(src: &str, mut pos: usize) -> Result<usize> {
    let bytes = src.as_bytes();
    let start = pos;
    // Optional decimal size before the apostrophe.
    while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'_') {
        pos += 1;
    }
    if pos < bytes.len() && bytes[pos] == b'\'' {
        pos += 1;
        // Optional signed marker.
        if pos < bytes.len() && (bytes[pos] == b's' || bytes[pos] == b'S') {
            pos += 1;
        }
        let base = bytes
            .get(pos)
            .copied()
            .ok_or_else(|| Error::new(Span::new(start, pos), "truncated based literal"))?;
        let valid = matches!(base.to_ascii_lowercase(), b'b' | b'o' | b'd' | b'h');
        if !valid {
            return Err(Error::new(
                Span::new(start, pos + 1),
                format!("invalid number base `{}`", base as char),
            ));
        }
        pos += 1;
        // Value digits may be separated by optional whitespace per the LRM;
        // we require them to be adjacent, which matches generated code.
        let digits_start = pos;
        while pos < bytes.len()
            && (bytes[pos].is_ascii_alphanumeric()
                || bytes[pos] == b'_'
                || bytes[pos] == b'?'
                || bytes[pos] == b'x'
                || bytes[pos] == b'z')
        {
            // Stop if the alphanumeric run is actually an identifier glued on
            // (e.g. `2'b10foo` is invalid and caught by digit validation below).
            pos += 1;
        }
        if pos == digits_start {
            return Err(Error::new(
                Span::new(start, pos),
                "based literal has no digits",
            ));
        }
        validate_digits(src, start, digits_start, pos, base)?;
    }
    Ok(pos)
}

/// Checks that every digit is legal for the base.
fn validate_digits(src: &str, lit_start: usize, start: usize, end: usize, base: u8) -> Result<()> {
    let ok = src[start..end].bytes().all(|d| {
        if d == b'_' || d == b'?' {
            return true;
        }
        let d = d.to_ascii_lowercase();
        match base.to_ascii_lowercase() {
            b'b' => matches!(d, b'0' | b'1' | b'x' | b'z'),
            b'o' => matches!(d, b'0'..=b'7' | b'x' | b'z'),
            b'd' => d.is_ascii_digit(),
            b'h' => d.is_ascii_hexdigit() || d == b'x' || d == b'z',
            _ => false,
        }
    });
    if ok {
        Ok(())
    } else {
        Err(Error::new(
            Span::new(lit_start, end),
            format!("digit not valid for base `{}`", base as char),
        ))
    }
}

/// Longest-match operator table.
fn match_operator(rest: &str) -> Option<(TokenKind, usize)> {
    use TokenKind::*;
    #[allow(clippy::type_complexity)] // plain operator lookup table
    const TABLE: &[(&str, fn() -> TokenKind)] = &[
        ("<<<", || AShl),
        (">>>", || AShr),
        ("===", || EqEqEq),
        ("!==", || BangEqEq),
        ("<<", || Shl),
        (">>", || Shr),
        ("<=", || Le),
        (">=", || Ge),
        ("==", || EqEq),
        ("!=", || BangEq),
        ("&&", || AmpAmp),
        ("||", || PipePipe),
        ("~&", || TildeAmp),
        ("~|", || TildePipe),
        ("~^", || TildeCaret),
        ("^~", || TildeCaret),
        ("**", || Power),
        ("+:", || PlusColon),
        ("-:", || MinusColon),
        ("(", || LParen),
        (")", || RParen),
        ("[", || LBracket),
        ("]", || RBracket),
        ("{", || LBrace),
        ("}", || RBrace),
        (";", || Semi),
        (",", || Comma),
        (":", || Colon),
        (".", || Dot),
        ("@", || At),
        ("#", || Hash),
        ("?", || Question),
        ("=", || Assign),
        ("+", || Plus),
        ("-", || Minus),
        ("*", || Star),
        ("/", || Slash),
        ("%", || Percent),
        ("!", || Bang),
        ("~", || Tilde),
        ("&", || Amp),
        ("|", || Pipe),
        ("^", || Caret),
        ("<", || Lt),
        (">", || Gt),
    ];
    for (pat, make) in TABLE {
        if rest.starts_with(pat) {
            return Some((make(), pat.len()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_module_header() {
        let k = kinds("module m(input a);");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Module),
                TokenKind::Ident("m".into()),
                TokenKind::LParen,
                TokenKind::Keyword(Keyword::Input),
                TokenKind::Ident("a".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_based_literals() {
        for lit in [
            "4'b1010",
            "8'hFF",
            "'b0",
            "12'o777",
            "4'sd3",
            "16'hDE_AD",
            "3'b1?1",
            "4'bxxxx",
        ] {
            let k = kinds(lit);
            assert_eq!(k.len(), 2, "literal {lit} should be one token");
            assert_eq!(k[0], TokenKind::Number(lit.into()), "literal {lit}");
        }
    }

    #[test]
    fn rejects_bad_base_digits() {
        assert!(lex("2'b012").is_err());
        assert!(lex("8'o9").is_err());
        assert!(lex("4'q1010").is_err());
    }

    #[test]
    fn distinguishes_shift_and_relational() {
        let k = kinds("a <<< b << c <= d < e");
        assert!(k.contains(&TokenKind::AShl));
        assert!(k.contains(&TokenKind::Shl));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Lt));
    }

    #[test]
    fn skips_comments_and_counts_bytes() {
        let out = lex_full("// hello\nmodule /* inner */ m;").expect("lex ok");
        assert!(out.comment_bytes >= "// hello".len() + "/* inner */".len());
        assert_eq!(out.tokens.len(), 4); // module, m, ;, EOF
        assert!(out.comment_ratio() > 0.0 && out.comment_ratio() < 1.0);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("module /* oops").is_err());
    }

    #[test]
    fn skips_compiler_directives() {
        let k = kinds("`timescale 1ns/1ps\nmodule m;");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Module));
    }

    #[test]
    fn lexes_strings() {
        let k = kinds(r#""hi there""#);
        assert_eq!(k[0], TokenKind::Str("hi there".into()));
    }

    #[test]
    fn lexes_escaped_identifier() {
        let k = kinds("\\bus[0] ;");
        assert_eq!(k[0], TokenKind::Ident("bus[0]".into()));
        assert_eq!(k[1], TokenKind::Semi);
    }

    #[test]
    fn lexes_system_identifiers() {
        let k = kinds("$signed(x)");
        assert_eq!(k[0], TokenKind::SysIdent("$signed".into()));
    }

    #[test]
    fn part_select_operators() {
        let k = kinds("a[3 +: 2] b[7 -: 4]");
        assert!(k.contains(&TokenKind::PlusColon));
        assert!(k.contains(&TokenKind::MinusColon));
    }

    #[test]
    fn identifier_with_dollar_inside() {
        let k = kinds("foo$bar");
        assert_eq!(k[0], TokenKind::Ident("foo$bar".into()));
    }

    #[test]
    fn spans_are_accurate() {
        let src = "assign y = a;";
        let toks = lex(src).expect("lex ok");
        assert_eq!(toks[1].span.slice(src), "y");
        assert_eq!(toks[3].span.slice(src), "a");
    }
}
