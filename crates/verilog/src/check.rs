//! Syntax checking and corpus-filter helpers (paper §III-A).
//!
//! The dataset pipeline retains only files that pass the parser's syntax
//! check and drops files without a complete `module`/`endmodule` structure
//! or consisting mostly of comments.

use crate::lexer::lex_full;
use crate::parser::parse;
use crate::token::Keyword;
use crate::{Result, SourceFile, TokenKind};

/// Parses `src`, returning the AST on success.
///
/// This is the VeriSpec equivalent of the paper's "Stagira parser syntax
/// check": code that parses is *cleaned code*; code that does not is
/// dropped from the corpus (and counted as a syntax failure during
/// evaluation).
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn syntax_check(src: &str) -> Result<SourceFile> {
    parse(src)
}

/// Quick structural filter: balanced `module`/`endmodule` pairs, at least
/// one of them, and no text after the final `endmodule` other than
/// whitespace or comments.
///
/// This runs before full parsing so obviously truncated files are
/// rejected cheaply, mirroring the paper's "filter out files lacking
/// complete `module` and `endmodule` structures".
pub fn structure_ok(src: &str) -> bool {
    let Ok(out) = lex_full(src) else { return false };
    let mut depth = 0i32;
    let mut pairs = 0usize;
    let mut after_last = false;
    for t in &out.tokens {
        match &t.kind {
            TokenKind::Keyword(Keyword::Module) => {
                if depth > 0 {
                    return false; // nested module
                }
                depth += 1;
                after_last = false;
            }
            TokenKind::Keyword(Keyword::Endmodule) => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
                pairs += 1;
                after_last = true;
            }
            TokenKind::Eof => break,
            _ => {
                if after_last && depth == 0 {
                    return false; // trailing junk after final endmodule
                }
                if depth == 0 {
                    return false; // tokens before any module
                }
            }
        }
    }
    depth == 0 && pairs > 0
}

/// Fraction of the input occupied by comments, in `[0, 1]`.
///
/// Files above a threshold (the pipeline uses 0.8) are dropped as
/// "primarily consisting of comments". Returns 1.0 for unlexable input so
/// such files are filtered as well.
pub fn comment_ratio(src: &str) -> f64 {
    match lex_full(src) {
        Ok(out) => out.comment_ratio(),
        Err(_) => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_module() {
        assert!(syntax_check("module m(input a, output y); assign y = a; endmodule").is_ok());
        assert!(structure_ok(
            "module m(input a, output y); assign y = a; endmodule"
        ));
    }

    #[test]
    fn rejects_truncated_module() {
        assert!(syntax_check("module m(input a, output y); assign y = a;").is_err());
        assert!(!structure_ok("module m(input a, output y); assign y = a;"));
    }

    #[test]
    fn rejects_trailing_junk() {
        assert!(!structure_ok("module m(); endmodule garbage"));
    }

    #[test]
    fn rejects_tokens_before_module() {
        assert!(!structure_ok("wire x; module m(); endmodule"));
    }

    #[test]
    fn rejects_nested_modules() {
        assert!(!structure_ok("module a(); module b(); endmodule endmodule"));
    }

    #[test]
    fn accepts_multiple_sequential_modules() {
        assert!(structure_ok("module a(); endmodule\nmodule b(); endmodule"));
    }

    #[test]
    fn comment_ratio_bounds() {
        assert_eq!(comment_ratio(""), 0.0);
        assert!(comment_ratio("// all comment") > 0.9);
        let r = comment_ratio("module m(); endmodule // note");
        assert!(r > 0.0 && r < 0.5);
    }

    #[test]
    fn unlexable_input_counts_as_all_comment() {
        assert_eq!(comment_ratio("module /* unterminated"), 1.0);
    }

    #[test]
    fn structure_ok_allows_comments_after_endmodule() {
        assert!(structure_ok("module m(); endmodule // done"));
    }
}
