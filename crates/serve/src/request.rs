//! The request model: what a client submits to the serving engine and
//! what it gets back.

use serde::{Deserialize, Serialize};
use verispec_core::{DecodeConfig, DecodeOutput, DraftConfig, DraftStats};
use verispec_lm::{Sampling, TokenId};

/// Which decoding engine a request runs under. All choices drive the
/// same target model; the choice controls speculation shape and the
/// syntax-integrity check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineChoice {
    /// Conventional next-token prediction (no speculation).
    Ntp,
    /// MEDUSA top-1 chain speculation (no tree, no syntax check).
    MedusaChain,
    /// MEDUSA tree speculation: entry `i` is head `i+1`'s top-k width.
    MedusaTree(Vec<usize>),
    /// The paper's syntax-aligned speculation ("Ours"), chain or tree.
    SyntaxAligned {
        /// Optional candidate-tree widths (`None` = top-1 chain).
        tree: Option<Vec<usize>>,
    },
    /// Classical draft-then-verify speculation with a separate draft
    /// model (the engine must be configured with one).
    DraftVerify {
        /// Draft block length γ.
        gamma: usize,
    },
    /// Grammar-constrained syntax-aligned speculation: candidate trees
    /// are viability-filtered and dead-tail pruned at propose time by
    /// the engine's [`verispec_grammar::GrammarOracle`] (configured via
    /// [`crate::ServeEngine::with_grammar`]; without one the request runs as
    /// plain [`EngineChoice::SyntaxAligned`]).
    GrammarTree {
        /// Optional candidate-tree widths (`None` = top-1 chain).
        tree: Option<Vec<usize>>,
    },
}

impl EngineChoice {
    /// Human-readable engine name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineChoice::Ntp => "NTP",
            EngineChoice::MedusaChain => "Medusa-chain",
            EngineChoice::MedusaTree(_) => "Medusa-tree",
            EngineChoice::SyntaxAligned { tree: None } => "Ours-chain",
            EngineChoice::SyntaxAligned { tree: Some(_) } => "Ours-tree",
            EngineChoice::DraftVerify { .. } => "Draft-verify",
            EngineChoice::GrammarTree { .. } => "Grammar-tree",
        }
    }

    /// Resolves the request's base [`DecodeConfig`] into the engine's
    /// effective one (tree widths, syntax alignment). The serial
    /// baseline a served run is compared against must use the same
    /// resolution.
    pub fn decode_config(&self, base: &DecodeConfig) -> DecodeConfig {
        match self {
            EngineChoice::Ntp | EngineChoice::MedusaChain => DecodeConfig {
                syntax_aligned: false,
                tree: None,
                ..base.clone()
            },
            EngineChoice::MedusaTree(widths) => DecodeConfig {
                syntax_aligned: false,
                tree: Some(widths.clone()),
                ..base.clone()
            },
            EngineChoice::SyntaxAligned { tree } | EngineChoice::GrammarTree { tree } => {
                DecodeConfig {
                    syntax_aligned: true,
                    tree: tree.clone(),
                    ..base.clone()
                }
            }
            EngineChoice::DraftVerify { .. } => base.clone(),
        }
    }

    /// The [`DraftConfig`] equivalent of a request's base config, for
    /// [`EngineChoice::DraftVerify`] requests (greedy maps to
    /// temperature 1.0 — classical draft-verify always samples).
    pub fn draft_config(&self, base: &DecodeConfig) -> Option<DraftConfig> {
        let EngineChoice::DraftVerify { gamma } = self else {
            return None;
        };
        Some(DraftConfig {
            gamma: *gamma,
            max_tokens: base.max_tokens,
            temperature: match base.sampling {
                Sampling::Temperature { temperature, .. } => temperature,
                Sampling::Greedy => 1.0,
            },
            eos: base.eos,
            seed: base.seed,
        })
    }
}

/// One generation request submitted to the serving engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen identifier; completions are reported under it.
    pub id: u64,
    /// Full prompt token ids (when submitted with a forked prefix
    /// session, the session's context must be a prefix of this).
    pub prompt: Vec<TokenId>,
    /// Decoding engine for this request.
    pub engine: EngineChoice,
    /// Budgets, sampling, seed, EOS. Tree/syntax fields are overridden
    /// by [`EngineChoice::decode_config`].
    pub cfg: DecodeConfig,
    /// Tick at which the request becomes visible to admission (0 =
    /// immediately). Models request arrival in an open-loop workload.
    pub arrival: u64,
    /// Optional SLO deadline: the absolute tick by which the request
    /// should finish. Consumed by the earliest-deadline-first tick
    /// order ([`crate::TickOrder::Edf`]) and the SLO-attainment
    /// telemetry; `None` means best-effort.
    pub deadline: Option<u64>,
    /// Multi-tenant request class (tenant id). Class 0 is the default;
    /// classes index into the per-class weighted-fairness shares
    /// ([`crate::ServeConfig::class_weights`] /
    /// [`crate::TickOrder::WeightedFair`]). Purely a scheduling tag —
    /// outputs are class-invariant.
    #[serde(default)]
    pub class: u32,
}

impl Request {
    /// A request with default arrival (immediately admissible), no
    /// deadline, and the default tenant class (0).
    pub fn new(id: u64, prompt: Vec<TokenId>, engine: EngineChoice, cfg: DecodeConfig) -> Self {
        Request {
            id,
            prompt,
            engine,
            cfg,
            arrival: 0,
            deadline: None,
            class: 0,
        }
    }

    /// Sets the SLO deadline (absolute tick).
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the multi-tenant request class (tenant id).
    pub fn with_class(mut self, class: u32) -> Self {
        self.class = class;
        self
    }
}

/// A finished request with scheduling metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// The generation result — bit-identical to the serial
    /// single-session engine's output for the same request.
    pub output: DecodeOutput,
    /// Acceptance stats for draft-verify requests.
    pub draft_stats: Option<DraftStats>,
    /// Tick at which the request was submitted (arrival tick).
    pub submitted: u64,
    /// Tick at which it was first admitted to the active set.
    pub admitted: u64,
    /// Tick of its final decoding step.
    pub finished: u64,
    /// Largest gap in ticks between consecutive scheduled steps while
    /// active — the starvation metric the scheduler's aging bounds.
    pub max_service_gap: u64,
    /// Times the request was preempted (parked and later resumed).
    pub preemptions: u32,
    /// Tick of every decoding step, aligned with `output.trace` (each
    /// step commits at least one token, so `step_ticks[0]` is the
    /// time-to-first-token tick and consecutive differences are the
    /// inter-commit gaps the latency telemetry aggregates).
    pub step_ticks: Vec<u64>,
    /// Engine-relative wall-clock seconds at which the request became
    /// visible (submission or arrival-channel receipt).
    pub seen_secs: f64,
    /// Engine-relative wall-clock seconds of the first committed token.
    pub first_token_secs: Option<f64>,
    /// Engine-relative wall-clock seconds of the final decoding step.
    pub finished_secs: f64,
    /// The request's SLO deadline tick, echoed from [`Request`].
    pub deadline: Option<u64>,
    /// Candidate tokens this request speculated across all steps (the
    /// speculation it *paid for*; excludes the always-committed base
    /// token). The input adaptive policies steer by, surfaced for bench
    /// reports.
    pub proposed_tokens: usize,
    /// Speculated tokens the verifier accepted (the speculation that
    /// *cashed out*).
    pub accepted_tokens: usize,
}

impl Completion {
    /// Tick at which the request committed its first token.
    pub fn first_token_tick(&self) -> Option<u64> {
        self.step_ticks.first().copied()
    }

    /// Queueing delay in ticks: submission to first admission.
    pub fn queue_ticks(&self) -> u64 {
        self.admitted.saturating_sub(self.submitted)
    }

    /// Whether the request met its deadline (`None` without one).
    pub fn met_deadline(&self) -> Option<bool> {
        self.deadline.map(|d| self.finished <= d)
    }

    /// Fraction of speculated tokens accepted, `None` if the request
    /// never speculated.
    pub fn acceptance_rate(&self) -> Option<f64> {
        (self.proposed_tokens > 0)
            .then(|| self.accepted_tokens as f64 / self.proposed_tokens as f64)
    }

    /// Tick-space equality: every field except the wall-clock seconds
    /// (`seen_secs` / `first_token_secs` / `finished_secs`), which
    /// measure real elapsed time and legitimately differ between two
    /// drives of the same deterministic schedule. The threaded-vs-
    /// lockstep parity tests compare completions with this.
    pub fn same_schedule(&self, other: &Completion) -> bool {
        self.id == other.id
            && self.output == other.output
            && self.draft_stats == other.draft_stats
            && self.submitted == other.submitted
            && self.admitted == other.admitted
            && self.finished == other.finished
            && self.max_service_gap == other.max_service_gap
            && self.preemptions == other.preemptions
            && self.step_ticks == other.step_ticks
            && self.deadline == other.deadline
            && self.proposed_tokens == other.proposed_tokens
            && self.accepted_tokens == other.accepted_tokens
    }
}
