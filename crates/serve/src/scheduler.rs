//! Tick-level scheduling: which active requests step this tick.
//!
//! Selection is policy-driven ([`TickOrder`]) with a starvation guard
//! layered on top: any request whose last scheduled step is more than
//! the aging threshold behind the current tick is *forced* into the
//! batch ahead of the policy order (oldest service first; overflow
//! beyond `max_batch` waits at the head of the next ticks), so every
//! policy — including the deliberately adversarial seeded shuffle the
//! property tests use — has a hard worst-case service gap of the
//! threshold plus a few rotations (see [`Scheduler::starvation_bound`]).
//! The bound is per-request and admission-agnostic: requests admitted
//! mid-flight by streaming arrivals are covered from their admission
//! tick exactly like closed-loop submissions. Outputs are unaffected by
//! selection order (each request's sampler and sessions are private),
//! so scheduling is purely a throughput/fairness lever.

use serde::{Deserialize, Serialize};

/// The order in which active requests are considered for a tick's
/// batch (after forced aging picks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TickOrder {
    /// Least-recently-stepped first: strict round-robin service.
    RoundRobin,
    /// Shortest-first: requests with the fewest generated tokens step
    /// first, so short generations drain quickly while aging keeps
    /// long ones progressing (the long/short fairness policy).
    ShortestFirst,
    /// Deterministic pseudo-random order keyed by `(seed, tick, id)` —
    /// used by the property tests to prove output invariance and
    /// no-starvation under arbitrary tick orders.
    Seeded(u64),
    /// Earliest-deadline-first: requests with the nearest SLO deadline
    /// step first (no deadline sorts last, then round-robin by last
    /// service). The aging guard still applies on top, so EDF cannot
    /// starve best-effort requests — the SLO-aware order trades
    /// throughput for deadline attainment under overload.
    Edf,
    /// Multi-tenant weighted fairness: batch slots are divided across
    /// request *classes* ([`ActiveView::class`]) in proportion to the
    /// configured per-class weights
    /// ([`Scheduler::with_class_weights`]), via per-class deficit
    /// counters — every pick credits each present class its weight and
    /// charges the picked class the total present weight, so realized
    /// service converges to the weight shares (classic deficit
    /// round-robin, integer-exact and deterministic). Within a class,
    /// requests rotate round-robin by last service. The aging guard
    /// still applies *per request* on top, so the no-starvation bound
    /// survives per class: even a weight-1 tenant next to a weight-100
    /// noisy neighbor keeps the hard worst-case service gap.
    WeightedFair,
}

/// Scheduler-visible state of one active request.
#[derive(Debug, Clone, Copy)]
pub struct ActiveView {
    /// Request id (tie-break and shuffle key).
    pub id: u64,
    /// Tick of the request's last scheduled step (admission tick if
    /// never stepped).
    pub last_step: u64,
    /// Admission tick.
    pub admitted: u64,
    /// Tokens generated so far.
    pub generated: usize,
    /// SLO deadline tick, if the request carries one (EDF sort key).
    pub deadline: Option<u64>,
    /// Multi-tenant request class (weighted-fairness share key; 0 is
    /// the default class).
    pub class: u32,
}

/// Selects up to `max_batch` of the active requests for one tick.
#[derive(Debug, Clone)]
pub struct Scheduler {
    order: TickOrder,
    /// Service-gap bound (ticks) beyond which a request is forced into
    /// the batch.
    starvation_bound: u64,
    /// Per-class weights for [`TickOrder::WeightedFair`], indexed by
    /// class id; classes beyond the vector (or with weight 0) default
    /// to weight 1.
    class_weights: Vec<u32>,
    /// Per-class deficit counters (lazily grown): positive means the
    /// class is owed service relative to its weight share.
    credits: Vec<i64>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Scheduler {
    /// A scheduler for a pool of `max_active` sessions stepped
    /// `max_batch` at a time: the aging bound is a small multiple of
    /// the round-trip time of a full rotation, so forced picks stay
    /// rare under fair policies but hard-bound the service gap under
    /// any policy.
    pub fn new(order: TickOrder, max_active: usize, max_batch: usize) -> Self {
        let rotation = max_active.div_ceil(max_batch.max(1)).max(1) as u64;
        Scheduler {
            order,
            starvation_bound: 2 * rotation + 2,
            class_weights: Vec::new(),
            credits: Vec::new(),
        }
    }

    /// Sets the per-class weighted-fairness shares consulted by
    /// [`TickOrder::WeightedFair`] (index = class id; missing or zero
    /// entries default to weight 1). A no-op for every other order.
    pub fn with_class_weights(mut self, weights: &[u32]) -> Self {
        self.class_weights = weights.to_vec();
        self
    }

    /// The effective weight of a class (configured share, defaulting
    /// to 1 for unknown classes and zero weights).
    fn weight(&self, class: u32) -> i64 {
        i64::from(
            self.class_weights
                .get(class as usize)
                .copied()
                .filter(|&w| w > 0)
                .unwrap_or(1),
        )
    }

    /// Records one batch-slot grant to `class` under weighted
    /// fairness: every class present this tick earns its weight, the
    /// picked class pays the total present weight. Zero-sum per pick,
    /// so realized per-class service converges to the weight shares.
    fn charge(&mut self, class: u32, present: &[u32]) {
        let max_class = present.iter().copied().max().unwrap_or(0).max(class);
        if self.credits.len() <= max_class as usize {
            self.credits.resize(max_class as usize + 1, 0);
        }
        let total: i64 = present.iter().map(|&c| self.weight(c)).sum();
        for &c in present {
            self.credits[c as usize] += self.weight(c);
        }
        self.credits[class as usize] -= total;
    }

    /// The forcing threshold of the aging guard: a request is promoted
    /// ahead of the policy order once `tick - last_step` reaches this.
    ///
    /// Note the *realized* worst-case service gap is slightly larger:
    /// when more than `max_batch` requests cross the threshold on the
    /// same tick, the overflow waits additional rotations (oldest
    /// service first), so the hard bound on any request's gap is this
    /// value plus up to `⌈active / max_batch⌉` further rotations —
    /// at most `starvation_bound() + max_active` ticks, which is what
    /// the no-starvation tests assert.
    pub fn starvation_bound(&self) -> u64 {
        self.starvation_bound
    }

    /// Indices (into `views`) of the requests to step this tick:
    /// starved requests first (oldest service first), then the policy
    /// order, up to `max_batch`. `&mut` because
    /// [`TickOrder::WeightedFair`] advances per-class deficit
    /// counters; every other order leaves the scheduler untouched.
    pub fn select(&mut self, views: &[ActiveView], tick: u64, max_batch: usize) -> Vec<usize> {
        let mut forced: Vec<usize> = (0..views.len())
            .filter(|&i| tick.saturating_sub(views[i].last_step) >= self.starvation_bound)
            .collect();
        forced.sort_by_key(|&i| (views[i].last_step, views[i].id));

        let mut rest: Vec<usize> = (0..views.len()).filter(|i| !forced.contains(i)).collect();
        match self.order {
            TickOrder::RoundRobin => {
                rest.sort_by_key(|&i| (views[i].last_step, views[i].admitted, views[i].id));
            }
            TickOrder::ShortestFirst => {
                rest.sort_by_key(|&i| (views[i].generated, views[i].id));
            }
            TickOrder::Seeded(seed) => {
                rest.sort_by_key(|&i| splitmix64(seed ^ tick.wrapping_mul(0xA5A5) ^ views[i].id));
            }
            TickOrder::Edf => {
                rest.sort_by_key(|&i| {
                    (
                        views[i].deadline.unwrap_or(u64::MAX),
                        views[i].last_step,
                        views[i].id,
                    )
                });
            }
            TickOrder::WeightedFair => {
                return self.select_weighted(views, forced, rest, max_batch);
            }
        }
        forced.extend(rest);
        forced.truncate(max_batch);
        forced
    }

    /// The [`TickOrder::WeightedFair`] slot-by-slot selection: forced
    /// aging picks go first (charged to their class so the accounting
    /// stays honest), then each remaining slot goes to the
    /// highest-credit class (tie: lowest class id) and, within it, the
    /// least-recently-stepped request.
    fn select_weighted(
        &mut self,
        views: &[ActiveView],
        forced: Vec<usize>,
        mut rest: Vec<usize>,
        max_batch: usize,
    ) -> Vec<usize> {
        let mut present: Vec<u32> = views.iter().map(|v| v.class).collect();
        present.sort_unstable();
        present.dedup();
        let mut picked = forced;
        picked.truncate(max_batch);
        for &i in &picked {
            self.charge(views[i].class, &present);
        }
        rest.sort_by_key(|&i| (views[i].last_step, views[i].admitted, views[i].id));
        while picked.len() < max_batch && !rest.is_empty() {
            let best_class = rest
                .iter()
                .map(|&i| views[i].class)
                .max_by_key(|&c| {
                    (
                        self.credits.get(c as usize).copied().unwrap_or(0),
                        std::cmp::Reverse(c),
                    )
                })
                .expect("rest is non-empty");
            let pos = rest
                .iter()
                .position(|&i| views[i].class == best_class)
                .expect("class came from rest");
            let i = rest.remove(pos);
            self.charge(best_class, &present);
            picked.push(i);
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize, tick: u64) -> Vec<ActiveView> {
        (0..n)
            .map(|i| ActiveView {
                id: i as u64,
                last_step: tick.saturating_sub(i as u64 % 3),
                admitted: 0,
                generated: i,
                deadline: None,
                class: 0,
            })
            .collect()
    }

    #[test]
    fn round_robin_covers_everyone_within_a_rotation() {
        let mut s = Scheduler::new(TickOrder::RoundRobin, 6, 2);
        let mut last = [0u64; 6];
        for tick in 1..=30u64 {
            let vs: Vec<ActiveView> = (0..6)
                .map(|i| ActiveView {
                    id: i as u64,
                    last_step: last[i],
                    admitted: 0,
                    generated: 0,
                    deadline: None,
                    class: 0,
                })
                .collect();
            let sel = s.select(&vs, tick, 2);
            assert_eq!(sel.len(), 2);
            for i in sel {
                last[i] = tick;
            }
        }
        // Everyone was stepped within the last rotation (3 ticks).
        for (i, &l) in last.iter().enumerate() {
            assert!(30 - l < 4, "request {i} starved: last step at {l}");
        }
    }

    #[test]
    fn seeded_order_never_starves_thanks_to_aging() {
        let mut s = Scheduler::new(TickOrder::Seeded(99), 8, 1);
        let bound = s.starvation_bound();
        let mut last = [0u64; 8];
        for tick in 1..=400u64 {
            let vs: Vec<ActiveView> = (0..8)
                .map(|i| ActiveView {
                    id: i as u64,
                    last_step: last[i],
                    admitted: 0,
                    generated: 0,
                    deadline: None,
                    class: 0,
                })
                .collect();
            for i in s.select(&vs, tick, 1) {
                assert!(
                    tick - last[i] <= bound + 8,
                    "gap exceeded aging bound at tick {tick}"
                );
                last[i] = tick;
            }
        }
        for (i, &l) in last.iter().enumerate() {
            assert!(400 - l <= bound + 8, "request {i} starved");
        }
    }

    #[test]
    fn shortest_first_prefers_fresh_generations() {
        let mut s = Scheduler::new(TickOrder::ShortestFirst, 4, 2);
        let sel = s.select(&views(4, 5), 5, 2);
        assert_eq!(sel, vec![0, 1], "fewest generated tokens go first");
    }

    #[test]
    fn edf_orders_by_deadline_with_best_effort_last() {
        let mut s = Scheduler::new(TickOrder::Edf, 4, 2);
        let mk = |id: u64, deadline: Option<u64>| ActiveView {
            id,
            last_step: 4,
            admitted: 0,
            generated: 0,
            deadline,
            class: 0,
        };
        let vs = vec![
            mk(0, None),
            mk(1, Some(90)),
            mk(2, Some(20)),
            mk(3, Some(50)),
        ];
        assert_eq!(
            s.select(&vs, 5, 4),
            vec![2, 3, 1, 0],
            "nearest deadline first, best-effort last"
        );
        // Aging still outranks deadlines: a starved best-effort request
        // is forced ahead of every deadline.
        let mut vs = vs;
        vs[0].last_step = 0;
        let tick = s.starvation_bound();
        assert_eq!(s.select(&vs, tick, 2)[0], 0, "aging guard wins over EDF");
    }

    #[test]
    fn batch_never_exceeds_limit() {
        let mut s = Scheduler::new(TickOrder::RoundRobin, 16, 4);
        assert_eq!(s.select(&views(16, 9), 9, 4).len(), 4);
        assert!(s.select(&[], 3, 4).is_empty());
    }

    #[test]
    fn weighted_fair_divides_slots_by_class_share() {
        // Two classes, weight 3 : 1, one request each, one slot per
        // tick: class 0 should get ~3/4 of the service.
        let mut s = Scheduler::new(TickOrder::WeightedFair, 2, 1).with_class_weights(&[3, 1]);
        let mut served = [0usize; 2];
        let mut last = [0u64; 2];
        for tick in 1..=400u64 {
            let vs: Vec<ActiveView> = (0..2)
                .map(|i| ActiveView {
                    id: i as u64,
                    last_step: last[i],
                    admitted: 0,
                    generated: 0,
                    deadline: None,
                    class: i as u32,
                })
                .collect();
            for i in s.select(&vs, tick, 1) {
                served[i] += 1;
                last[i] = tick;
            }
        }
        assert_eq!(served[0] + served[1], 400);
        assert!(
            (295..=305).contains(&served[0]),
            "weight-3 class got {} of 400 slots, expected ~300",
            served[0]
        );
    }

    #[test]
    fn weighted_fair_never_starves_the_light_class() {
        // A weight-100 noisy neighbor with many requests vs one
        // weight-1 tenant: the aging guard still bounds the light
        // tenant's service gap per request.
        let mut s = Scheduler::new(TickOrder::WeightedFair, 8, 1).with_class_weights(&[100, 1]);
        let bound = s.starvation_bound();
        let mut last = [0u64; 8];
        for tick in 1..=400u64 {
            let vs: Vec<ActiveView> = (0..8)
                .map(|i| ActiveView {
                    id: i as u64,
                    last_step: last[i],
                    admitted: 0,
                    generated: 0,
                    deadline: None,
                    class: u32::from(i == 7),
                })
                .collect();
            for i in s.select(&vs, tick, 1) {
                assert!(
                    tick - last[i] <= bound + 8,
                    "gap exceeded aging bound at tick {tick} for request {i}"
                );
                last[i] = tick;
            }
        }
        assert!(
            400 - last[7] <= bound + 8,
            "weight-1 tenant starved: last step at {}",
            last[7]
        );
    }
}
