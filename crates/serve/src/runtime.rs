//! The unified fleet runtime: one facade over the lockstep and
//! threaded dispatchers, one drive loop, and deterministic fault
//! injection with crash/recovery session migration.
//!
//! # Why a facade
//!
//! Before this module, driving a fleet meant choosing among six entry
//! points (`Dispatcher::{run, run_paced, run_streaming}` and their
//! threaded/free-function siblings), each duplicating the same
//! route-then-tick loop. [`FleetRuntime`] collapses them: the backend
//! ([`Backend::Lockstep`] vs [`Backend::Threaded`]) is a constructor
//! parameter, the drive mode is a value ([`Drive::Batch`] /
//! [`Drive::Paced`] / [`Drive::Streaming`]), and **both backends run
//! the exact same generic drive loops** over the crate-private
//! `FleetBackend` trait — so the fault-injection layer threads through exactly
//! one code path, and threaded==lockstep parity pins fault-injected
//! runs for free. The legacy entry points survive as thin wrappers.
//!
//! ```text
//!                FleetRuntime::new(model, cfg, dcfg, backend)
//!                    .with_fault_plan(plan)
//!                    .run(Drive::Paced(requests), cost)
//!                         │
//!            ┌────────────┴─────────────┐
//!            ▼                          ▼
//!   Dispatcher (lockstep)     ThreadedDispatcher (1 thread/worker)
//!            └────────────┬─────────────┘
//!                         ▼
//!        drive_paced::<B: FleetBackend>   ← the ONE fault loop
//!          each round: fire due faults → route due arrivals → tick
//! ```
//!
//! # Deterministic fault injection
//!
//! A [`FaultPlan`] is a *trace-specified* schedule of
//! [`FaultEvent::CrashWorker`] / [`FaultEvent::RestartWorker`] events
//! plus optional per-tenant [`ClassShare`] weights. Nothing is random
//! at run time: the same plan over the same workload produces the same
//! run, tick for tick, on either backend.
//!
//! **Crash.** A crash at tick `t` takes effect before the fleet
//! executes tick `t`: the worker's engine is consumed, everything it
//! *finished* is banked as a report segment, and every in-flight and
//! queued request is **migrated** — re-routed through the live router
//! (probes of dead workers are masked) and resubmitted from its
//! original [`Request`] on a surviving worker. Recovery is
//! **exact replay**: engines are deterministic functions of their
//! token context, so the migrated request regenerates the very same
//! token stream it would have produced — fleet outputs are invariant
//! under crashes; only schedules (and therefore latency) move. The
//! tokens the dead worker had already generated are re-generated on
//! the new one and accounted as `replay_tokens`
//! ([`verispec_trace::EventKind::Migrated`]).
//!
//! **Backpressure.** When a crash (or an arrival) finds *no* worker
//! alive, the request is parked in a fleet-level deferred queue and a
//! [`verispec_trace::EventKind::Backpressure`] event is emitted; the
//! queue flushes through the router at the next restart. If the plan
//! ends with the whole fleet dead, deferred requests are shed
//! deterministically at the fleet level.
//!
//! **Restart.** A restarted worker rejoins cold at the fault tick
//! (its clock is advanced so virtual-time causality holds — nothing
//! it serves can predate the fault) with an empty prefix cache:
//! crashes lose cache state, and warm stems are applied at fleet
//! startup only.
//!
//! # Multi-tenant weighted fairness
//!
//! [`FaultPlan::classes`] assigns weighted-fairness shares to request
//! classes ([`crate::Request::class`]); a non-empty assignment switches
//! every worker to [`crate::TickOrder::WeightedFair`] with the derived
//! [`crate::ServeConfig::class_weights`]. Weights compose with the
//! scheduler's aging guard, so the per-request no-starvation bound
//! survives per class. Like routing and faults, shares steer only
//! *when* requests step — outputs are class-invariant.
//!
//! # FaultPlan JSON schema
//!
//! [`FaultPlan`] serializes with `serde` (the shape
//! `verispec-load` embeds in its arrival-trace files):
//!
//! ```json
//! {
//!   "events": [
//!     { "CrashWorker":   { "tick": 40, "worker": 1 } },
//!     { "RestartWorker": { "tick": 90, "worker": 1 } }
//!   ],
//!   "classes": [
//!     { "class": 0, "weight": 3 },
//!     { "class": 1, "weight": 1 }
//!   ]
//! }
//! ```
//!
//! Both fields default to empty, and an empty plan is exactly the
//! fault-free runtime: the paced drive degenerates bit-for-bit to the
//! historical `run_paced` loop.

use crate::dispatch::{DispatchConfig, Dispatcher, RoutePolicy};
use crate::engine::{ServeConfig, ServeStats};
use crate::request::Request;
use crate::scheduler::TickOrder;
use crate::threaded::ThreadedDispatcher;
use serde::{Deserialize, Serialize};
use verispec_core::SpecPolicy;
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, TokenId};
use verispec_trace::{canonicalize_fleet_events, EventKind, EventLog, TraceEvent};

/// One deterministic, trace-specified fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Kill a worker before the fleet executes `tick`: its finished
    /// work is banked, its in-flight and queued requests migrate to
    /// surviving workers by exact replay, and its replacement engine
    /// sits dead (unroutable) until a matching
    /// [`FaultEvent::RestartWorker`]. Crashing an already-dead worker
    /// is a no-op.
    CrashWorker {
        /// The fault tick (same clock as [`Request::arrival`]).
        tick: u64,
        /// The worker index to kill.
        worker: usize,
    },
    /// Revive a dead worker at `tick`: it rejoins routing cold (empty
    /// pool, empty prefix cache, clock advanced to the fault tick) and
    /// any backpressure-deferred requests immediately re-route.
    /// Restarting a live worker is a no-op.
    RestartWorker {
        /// The fault tick.
        tick: u64,
        /// The worker index to revive.
        worker: usize,
    },
}

impl FaultEvent {
    /// The tick this event fires at.
    pub fn tick(&self) -> u64 {
        match *self {
            FaultEvent::CrashWorker { tick, .. } | FaultEvent::RestartWorker { tick, .. } => tick,
        }
    }

    /// The worker this event targets.
    pub fn worker(&self) -> usize {
        match *self {
            FaultEvent::CrashWorker { worker, .. } | FaultEvent::RestartWorker { worker, .. } => {
                worker
            }
        }
    }
}

/// One tenant class's weighted-fairness share (see
/// [`FaultPlan::classes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassShare {
    /// The request class ([`Request::class`]) the share applies to.
    pub class: u32,
    /// Its scheduling weight (a class with weight `w` gets `w` batch
    /// slots for every 1 a weight-1 class gets, when both have work).
    pub weight: u32,
}

/// A deterministic fault schedule plus optional multi-tenant shares —
/// the whole failure scenario of a run, specified up front so replays
/// are exact. See the [module docs](crate::runtime) for semantics and
/// the JSON schema.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct FaultPlan {
    /// Crash/restart events; fired in tick order (ties in plan order).
    pub events: Vec<FaultEvent>,
    /// Per-tenant weighted-fairness shares; non-empty switches workers
    /// to [`TickOrder::WeightedFair`] with the derived
    /// [`ServeConfig::class_weights`].
    pub classes: Vec<ClassShare>,
}

// `Deserialize` is written by hand: `{}` and trace files written
// before faults existed must parse as the empty plan, so both fields
// tolerate being absent (the derived impl requires every field).
impl serde::Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn optional_vec<T: serde::Deserialize>(
            v: &serde::Value,
            name: &str,
        ) -> Result<Vec<T>, serde::Error> {
            match v.field(name) {
                Ok(f) => serde::Deserialize::from_value(f),
                Err(e) => match v {
                    serde::Value::Map(_) => Ok(Vec::new()),
                    _ => Err(e),
                },
            }
        }
        Ok(FaultPlan {
            events: optional_vec(v, "events")?,
            classes: optional_vec(v, "classes")?,
        })
    }
}

impl FaultPlan {
    /// The empty plan (no faults, no shares) — the fault-free runtime.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.classes.is_empty()
    }

    /// Appends a [`FaultEvent::CrashWorker`] (builder-style).
    pub fn crash(mut self, tick: u64, worker: usize) -> Self {
        self.events.push(FaultEvent::CrashWorker { tick, worker });
        self
    }

    /// Appends a [`FaultEvent::RestartWorker`] (builder-style).
    pub fn restart(mut self, tick: u64, worker: usize) -> Self {
        self.events.push(FaultEvent::RestartWorker { tick, worker });
        self
    }

    /// Sets one class's share (builder-style).
    pub fn share(mut self, class: u32, weight: u32) -> Self {
        self.classes.push(ClassShare { class, weight });
        self
    }

    /// The events sorted by tick (stable: same-tick events keep plan
    /// order, so a crash-then-restart pair at one tick is well
    /// defined).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(FaultEvent::tick);
        events
    }

    /// Expands [`FaultPlan::classes`] into the dense per-class weight
    /// vector [`ServeConfig::class_weights`] expects (unlisted classes
    /// get weight 1).
    pub fn class_weights(&self) -> Vec<u32> {
        let len = self
            .classes
            .iter()
            .map(|s| s.class as usize + 1)
            .max()
            .unwrap_or(0);
        let mut weights = vec![1u32; len];
        for s in &self.classes {
            weights[s.class as usize] = s.weight;
        }
        weights
    }
}

/// Which execution backend drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The single-threaded deterministic oracle: one thread ticks every
    /// worker in lockstep ([`Dispatcher`]).
    Lockstep,
    /// One OS thread per worker over the command/reply protocol
    /// ([`ThreadedDispatcher`]); proptest-pinned tick-identical to the
    /// oracle, faults included.
    Threaded,
}

/// How requests reach the fleet — the drive mode.
#[derive(Debug)]
pub enum Drive {
    /// Closed-loop: every request routed up front in the given order,
    /// then the fleet runs to completion.
    Batch(Vec<Request>),
    /// Open-loop: requests are routed exactly when their arrival ticks
    /// fall due on the fleet clock (load-aware policies see real queue
    /// state). The only mode that accepts fault events.
    Paced(Vec<Request>),
    /// Live-channel: requests are routed as they are received;
    /// blocking-waits when idle with the stream open.
    Streaming(std::sync::mpsc::Receiver<Request>),
}

/// The result of a [`FleetRuntime`] run: the fleet-merged report plus
/// (when tracing was requested) the event stream in canonical fleet
/// order ([`canonicalize_fleet_events`]) — identical across backends
/// for the same run.
#[derive(Debug)]
pub struct FleetRun {
    /// Fleet-merged report (completions/shed sorted by id, merged and
    /// per-worker stats, realized assignments).
    pub report: crate::dispatch::DispatchReport,
    /// Canonical fleet event stream; empty unless
    /// [`FleetRuntime::with_tracing`] was requested.
    pub events: Vec<TraceEvent>,
}

/// The unified fleet facade; see the [module docs](crate::runtime).
pub struct FleetRuntime<'m> {
    model: &'m MlpLm,
    cfg: ServeConfig,
    dcfg: DispatchConfig,
    backend: Backend,
    draft: Option<&'m (dyn LanguageModel + Sync)>,
    grammar: Option<&'m GrammarOracle>,
    policy: Option<&'m dyn SpecPolicy>,
    warm: Vec<Vec<TokenId>>,
    traced: bool,
    plan: FaultPlan,
}

impl<'m> FleetRuntime<'m> {
    /// A fleet of `workers` engines over the shared model under
    /// `route`, executed by `backend`.
    pub fn new(
        model: &'m MlpLm,
        cfg: ServeConfig,
        workers: usize,
        route: RoutePolicy,
        backend: Backend,
    ) -> Self {
        FleetRuntime {
            model,
            cfg,
            dcfg: DispatchConfig::new(workers, route),
            backend,
            draft: None,
            grammar: None,
            policy: None,
            warm: Vec::new(),
            traced: false,
            plan: FaultPlan::none(),
        }
    }

    /// Attaches the draft model to every worker (`Sync` because the
    /// threaded backend shares it across worker threads).
    pub fn with_draft(mut self, draft: &'m (dyn LanguageModel + Sync)) -> Self {
        self.draft = Some(draft);
        self
    }

    /// Attaches the grammar oracle to every worker.
    pub fn with_grammar(mut self, oracle: &'m GrammarOracle) -> Self {
        self.grammar = Some(oracle);
        self
    }

    /// Replaces every worker's speculation policy.
    pub fn with_policy(mut self, policy: &'m dyn SpecPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Seeds every worker's prefix cache with a warm stem at startup
    /// (replacement engines built after a crash start cold).
    pub fn warm_prefix(mut self, tokens: &[TokenId]) -> Self {
        self.warm.push(tokens.to_vec());
        self
    }

    /// Collects structured events; [`FleetRun::events`] carries the
    /// canonical fleet stream.
    pub fn with_tracing(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Installs the failure scenario (and/or tenant shares) for the
    /// run. Fault *events* require [`Drive::Paced`] — the only drive
    /// with a fleet clock the trace-specified ticks are meaningful on;
    /// class shares apply to every drive.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Executes the drive and returns the merged run.
    ///
    /// # Panics
    ///
    /// Panics if the fault plan carries events and `drive` is not
    /// [`Drive::Paced`].
    pub fn run(self, drive: Drive, cost: &GpuCostModel) -> FleetRun {
        assert!(
            self.plan.events.is_empty() || matches!(drive, Drive::Paced(_)),
            "fault events require Drive::Paced (trace-specified fault ticks \
             are only meaningful on the paced fleet clock)"
        );
        let mut cfg = self.cfg;
        if !self.plan.classes.is_empty() {
            cfg.class_weights = self.plan.class_weights();
            cfg.order = TickOrder::WeightedFair;
        }
        let faults = self.plan.sorted_events();
        match self.backend {
            Backend::Lockstep => {
                let log = self.traced.then(EventLog::new);
                let mut d = Dispatcher::new(self.model, cfg, self.dcfg);
                if let Some(draft) = self.draft {
                    d = d.with_draft(draft as &dyn LanguageModel);
                }
                if let Some(oracle) = self.grammar {
                    d = d.with_grammar(oracle);
                }
                if let Some(policy) = self.policy {
                    d = d.with_policy(policy);
                }
                if let Some(log) = &log {
                    d = d.with_sink(log);
                }
                for stem in &self.warm {
                    d.warm_prefix(stem);
                }
                let report = match drive {
                    Drive::Batch(requests) => {
                        for req in requests {
                            d.submit(req);
                        }
                        d.run(cost)
                    }
                    Drive::Paced(requests) => d.run_paced_with_faults(requests, &faults, cost),
                    Drive::Streaming(rx) => d.run_streaming(rx, cost),
                };
                let events = log
                    .map(|l| canonicalize_fleet_events(&l.into_events()))
                    .unwrap_or_default();
                FleetRun { report, events }
            }
            Backend::Threaded => {
                let mut td = ThreadedDispatcher::new(self.model, cfg, self.dcfg);
                if let Some(draft) = self.draft {
                    td = td.with_draft(draft);
                }
                if let Some(oracle) = self.grammar {
                    td = td.with_grammar(oracle);
                }
                if let Some(policy) = self.policy {
                    td = td.with_policy(policy);
                }
                for stem in &self.warm {
                    td = td.warm_prefix(stem);
                }
                if self.traced {
                    td = td.with_tracing();
                }
                let run = match drive {
                    Drive::Batch(requests) => td.run_threaded(requests, cost),
                    Drive::Paced(requests) => td.run_paced_faulted(requests, &faults, cost),
                    Drive::Streaming(rx) => td.run_streaming_threaded(rx, cost),
                };
                FleetRun {
                    report: run.report,
                    events: run.events,
                }
            }
        }
    }
}

/// The backend abstraction the generic drive loops run over: the
/// minimal fleet surface — clock, liveness, routed submission, one
/// tick round, crash/restart, and fleet-level event/shed bookkeeping —
/// implemented by both the lockstep [`Dispatcher`] and the threaded
/// coordinator, so every drive (and the whole fault layer) is one code
/// path.
pub(crate) trait FleetBackend {
    /// The fleet clock: the most-advanced worker's scheduler clock.
    fn now(&self) -> u64;
    /// Whether any worker still has queued or active work.
    fn fleet_has_work(&self) -> bool;
    /// Per-worker liveness (dead workers are masked at routing).
    fn alive(&self) -> &[bool];
    /// Routes and enqueues one request among live workers; returns the
    /// chosen worker.
    fn route_submit(&mut self, req: Request) -> usize;
    /// Runs one fleet tick round (every busy worker ticks once).
    fn tick_round(&mut self, cost: &GpuCostModel);
    /// Kills worker `w` at tick `at`: banks its finished work, replaces
    /// it with a cold dead engine whose clock starts at `at`, and
    /// returns the stranded `(request, tokens already generated)`
    /// pairs sorted by id.
    fn crash_worker(&mut self, w: usize, at: u64) -> Vec<(Request, usize)>;
    /// Revives worker `w` at tick `at` (clock advanced to `at`).
    fn restart_worker(&mut self, w: usize, at: u64);
    /// Folds a fleet-level (coordinator) event into the fleet stats
    /// and, when tracing, the event stream.
    fn record_fleet_event(&mut self, ev: TraceEvent);
    /// Records a fleet-level shed (a deferred request dropped because
    /// the whole fleet stayed dead).
    fn shed_fleet(&mut self, req: Request, tick: u64);
}

/// A backpressure-deferred request: the original submission, the
/// tokens it had generated before its worker died (0 for plain
/// arrivals), and the worker it was stranded on (`None` for arrivals
/// that were never routed).
type Deferred = (Request, usize, Option<u32>);

fn any_alive<B: FleetBackend>(fleet: &B) -> bool {
    fleet.alive().iter().any(|&a| a)
}

/// Routes one migrant or defers it under backpressure.
fn migrate<B: FleetBackend>(
    fleet: &mut B,
    req: Request,
    replay_tokens: usize,
    from: u32,
    tick: u64,
    deferred: &mut Vec<Deferred>,
) {
    if !any_alive(fleet) {
        fleet.record_fleet_event(TraceEvent {
            tick,
            worker: from,
            request: Some(req.id),
            kind: EventKind::Backpressure,
        });
        deferred.push((req, replay_tokens, Some(from)));
        return;
    }
    let id = req.id;
    let to = fleet.route_submit(req) as u32;
    fleet.record_fleet_event(TraceEvent {
        tick,
        worker: to,
        request: Some(id),
        kind: EventKind::Migrated {
            from,
            to,
            replay_tokens,
        },
    });
}

/// Routes one due arrival or defers it under backpressure.
fn admit_or_defer<B: FleetBackend>(
    fleet: &mut B,
    req: Request,
    now: u64,
    deferred: &mut Vec<Deferred>,
) {
    if any_alive(fleet) {
        fleet.route_submit(req);
    } else {
        fleet.record_fleet_event(TraceEvent {
            tick: now,
            worker: 0,
            request: Some(req.id),
            kind: EventKind::Backpressure,
        });
        deferred.push((req, 0, None));
    }
}

/// Applies one fault event. Crashes migrate (or defer) every stranded
/// request; restarts flush the deferred queue through the router.
fn apply_fault<B: FleetBackend>(fleet: &mut B, ev: FaultEvent, deferred: &mut Vec<Deferred>) {
    let n = fleet.alive().len();
    match ev {
        FaultEvent::CrashWorker { tick, worker } => {
            if worker >= n || !fleet.alive()[worker] {
                return;
            }
            let stranded = fleet.crash_worker(worker, tick);
            fleet.record_fleet_event(TraceEvent {
                tick,
                worker: worker as u32,
                request: None,
                kind: EventKind::WorkerCrashed {
                    in_flight: stranded.len(),
                },
            });
            for (req, replay) in stranded {
                migrate(fleet, req, replay, worker as u32, tick, deferred);
            }
        }
        FaultEvent::RestartWorker { tick, worker } => {
            if worker >= n || fleet.alive()[worker] {
                return;
            }
            fleet.restart_worker(worker, tick);
            fleet.record_fleet_event(TraceEvent {
                tick,
                worker: worker as u32,
                request: None,
                kind: EventKind::WorkerRestarted,
            });
            for (req, replay, from) in std::mem::take(deferred) {
                match from {
                    Some(from) => migrate(fleet, req, replay, from, tick, deferred),
                    None => admit_or_defer(fleet, req, tick, deferred),
                }
            }
        }
    }
}

/// The one paced drive: fire due faults, route due arrivals, tick —
/// every round, until no arrival and no fault remains (the caller then
/// drains the fleet backend-optimally). With an empty fault schedule
/// this is bit-for-bit the historical `run_paced` loop.
pub(crate) fn drive_paced<B: FleetBackend>(
    fleet: &mut B,
    mut requests: Vec<Request>,
    faults: &[FaultEvent],
    cost: &GpuCostModel,
) {
    requests.sort_by_key(|r| r.arrival);
    let mut pending = requests.into_iter().peekable();
    let mut faults = {
        let mut sorted = faults.to_vec();
        sorted.sort_by_key(FaultEvent::tick);
        std::collections::VecDeque::from(sorted)
    };
    let mut deferred: Vec<Deferred> = Vec::new();
    loop {
        // The fleet's time is its most-advanced worker clock. The
        // upcoming tick moves busy workers to `now + 1`, so faults and
        // arrivals due by then take effect *before* that tick — a
        // tick-T event applied after the fleet passes T would act
        // late and break schedule identity with the single-engine
        // oracle.
        let now = fleet.now();
        while faults.front().is_some_and(|f| f.tick() <= now + 1) {
            let ev = faults.pop_front().expect("peeked");
            apply_fault(fleet, ev, &mut deferred);
        }
        while pending.peek().is_some_and(|r| r.arrival <= now + 1) {
            let req = pending.next().expect("peeked");
            admit_or_defer(fleet, req, now, &mut deferred);
        }
        if fleet.fleet_has_work() {
            if pending.peek().is_none() && faults.is_empty() {
                // Nothing left that could perturb the fleet: the
                // remaining ticks are pure per-worker drains, which
                // the caller runs without round barriers.
                break;
            }
            fleet.tick_round(cost);
        } else {
            // Idle fleet: jump to whichever comes first — the next
            // arrival group (receiving workers fast-forward their own
            // clocks) or the next fault (crash/restart advances the
            // target worker's clock itself).
            let next_arrival = pending.peek().map(|r| r.arrival);
            let next_fault = faults.front().map(FaultEvent::tick);
            match (next_arrival, next_fault) {
                (Some(a), Some(f)) if f <= a => {
                    let ev = faults.pop_front().expect("peeked");
                    apply_fault(fleet, ev, &mut deferred);
                }
                (Some(a), _) => {
                    while pending.peek().is_some_and(|r| r.arrival <= a) {
                        let req = pending.next().expect("peeked");
                        admit_or_defer(fleet, req, now, &mut deferred);
                    }
                }
                (None, Some(_)) => {
                    let ev = faults.pop_front().expect("peeked");
                    apply_fault(fleet, ev, &mut deferred);
                }
                (None, None) => {
                    // No arrivals, no faults, no work — but possibly a
                    // deferred queue with every worker dead and no
                    // restart coming: shed it deterministically at the
                    // fleet level rather than hanging.
                    for (req, _, _) in std::mem::take(&mut deferred) {
                        fleet.record_fleet_event(TraceEvent {
                            tick: now,
                            worker: 0,
                            request: Some(req.id),
                            kind: EventKind::Shed {
                                arrival: req.arrival,
                                deadline: req.deadline,
                            },
                        });
                        fleet.shed_fleet(req, now);
                    }
                    break;
                }
            }
        }
    }
}

/// The one streaming drive: drain newly arrived requests, tick, block
/// for the next arrival when idle with the stream open. Shared by
/// both backends (streaming accepts no fault events).
pub(crate) fn drive_streaming<B: FleetBackend>(
    fleet: &mut B,
    arrivals: std::sync::mpsc::Receiver<Request>,
    cost: &GpuCostModel,
) {
    use std::sync::mpsc::TryRecvError;
    let mut open = true;
    loop {
        while open {
            match arrivals.try_recv() {
                Ok(req) => {
                    fleet.route_submit(req);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => open = false,
            }
        }
        if fleet.fleet_has_work() {
            fleet.tick_round(cost);
        } else if open {
            match arrivals.recv() {
                Ok(req) => {
                    fleet.route_submit(req);
                }
                Err(_) => open = false,
            }
        } else {
            break;
        }
    }
}

/// Merges the report segments a crashing-and-replaced worker produced
/// over its lifetimes into the worker's single [`crate::ServeReport`]
/// (identity for the single fault-free segment). Both backends fold
/// per-worker segments through this, so their per-worker stats cannot
/// diverge.
pub(crate) fn merge_segments(segments: Vec<crate::ServeReport>) -> crate::ServeReport {
    let mut completions = Vec::new();
    let mut shed = Vec::new();
    let mut stats = ServeStats::default();
    for seg in segments {
        completions.extend(seg.completions);
        shed.extend(seg.shed);
        stats.merge(&seg.stats);
    }
    completions.sort_by_key(|c| c.id);
    shed.sort_by_key(|s| s.id);
    crate::ServeReport {
        completions,
        shed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_round_trips_and_sorts() {
        let plan = FaultPlan::none()
            .restart(90, 1)
            .crash(40, 1)
            .share(0, 3)
            .share(1, 1);
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, plan);
        let sorted = plan.sorted_events();
        assert_eq!(
            sorted[0],
            FaultEvent::CrashWorker {
                tick: 40,
                worker: 1
            }
        );
        assert_eq!(
            sorted[1],
            FaultEvent::RestartWorker {
                tick: 90,
                worker: 1
            }
        );
        assert_eq!(plan.class_weights(), vec![3, 1]);
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().class_weights().is_empty());
    }

    #[test]
    fn empty_json_object_is_the_empty_plan() {
        let plan: FaultPlan = serde_json::from_str("{}").expect("defaults");
        assert!(plan.is_empty());
    }
}
