//! `verispec-serve`: continuous-batching multi-request serving over
//! [`verispec_lm::DecodeSession`].
//!
//! # Serving architecture
//!
//! The single-request engines in `verispec-core` drive one session per
//! generation. Under realistic serving load, that leaves the model
//! kernels starved: every request pays its own small trunk/head matmul
//! per decoding step, and speculative-decoding speedups measured on a
//! single stream can evaporate once requests compete (the
//! "Performance or Illusion?" concern). This crate adds the request
//! level:
//!
//! ```text
//!   FleetRuntime (runtime) ── the unified drive API: one facade over
//!   Drive::{Batch,Paced,Streaming} × Backend::{Lockstep,Threaded},
//!   plus FaultPlan — deterministic worker crash/restart events,
//!   migration by exact replay, fleet-level backpressure, and
//!   per-tenant weighted-fairness shares — threaded through ONE
//!   generic drive loop (FleetBackend) shared by both backends
//!                        │
//!   mpsc arrivals ─► Dispatcher ── RoutePolicy (rr / jsq by
//!   (open-loop,      (optional     ready_depth / least-loaded by
//!    deadlines)       fleet)       outstanding_cost / prefix-affine
//!                        │         by prefix_match_depth probes /
//!                        │         pinned replay; dead workers are
//!                        │         masked out while crashed)
//!                        │ one shard per worker — two drives over the
//!                        │ same Router core:
//!                        │  · lockstep (the deterministic oracle):
//!                        │    one thread advances all workers round
//!                        │    by round
//!                        │  · threaded (ThreadedDispatcher): one OS
//!                        │    thread per worker in thread::scope,
//!                        │    WorkerCmd/WorkerReply mpsc protocol
//!                        │    (Submit/Tick/Probe/Crash/Restart/Drain
//!                        │    down; Ticked/Probed/Crashed/Finished
//!                        │    up); barriers only at route-time probe
//!                        │    reads, fault round-trips, and the
//!                        │    paced round boundary, barrier-free
//!                        │    free-run after the last arrival —
//!                        │    proptest-pinned tick-identical to
//!                        │    lockstep, fault-injected runs included
//!                        ▼
//!   submit(Request) ──────────┐      ServeEngine (× N workers)   model
//!   mpsc arrivals ─► drain_ ──┴► queue ─► admission ─► active pool
//!   (open-loop,      arrivals   (prefix    (arrival,    one Stepper
//!    per tick,                   forks ≤    preempt,    per request
//!    deadlines)                  session_   LRU evict   (policy +
//!                                cap, shed  = replay)    history)
//!                                overflow)      │
//!                                PrefixCache ◄──┘ lookup/insert per
//!                                (radix trie of   admission: fork the
//!                                 frozen session  deepest cached stem,
//!                                 snapshots, CoW  ingest only the
//!                                 forks, LRU      unmatched suffix,
//!                                 leaf eviction   snapshot new nodes
//!                                 charged to      (hits skip warmup
//!                                 session_cap)    under ingest_rate)
//!                              ┌────────────────────────────┐
//!                       tick:  │ Scheduler.select ≤ batch   │
//!                              │  (RR/shortest/seeded/EDF   │
//!                              │   + aging guard)           │
//!                              │ SpecPolicy divides the     │ ShapeQuery{base,
//!                              │  per-tick verify capacity ─┼─ history, cap} →
//!                              │  (pin shape / defer)       │ SpecShape per req
//!                              │ fused propose  ────────────┼─► multi_logits_many
//!                              │  └ GrammarOracle filters + │   (grammar layer:
//!                              │    dead-tail prunes trees  │    verispec-grammar)
//!                              │ fused verify   ────────────┼─► verify_many
//!                              │ per-request commit         │   (one matvec_batch
//!                              │  └ step_ticks + acceptance │    pass each, lane-
//!                              └────────────────────────────┘    tuned 4/8/16 and
//!                                     │ done                     row-sharded when
//!                                     ▼                          big)
//!                   Completion{output, step_ticks, deadline,
//!                              proposed/accepted tokens, stats}
//!
//!   every transition above ───► &dyn TraceSink (verispec-trace)
//!   (submit / route+probes /     ├ NoopSink (default): zero-cost,
//!    cache walk / admit /        │  the bit-identity parity paths
//!    step+shape / defer /        │  run the exact untraced code
//!    preempt / evict / shed /    └ EventLog: tick-stamped TraceEvents
//!    finish / deadline / batch /    → MetricsRegistry, Chrome trace
//!    budget / idle-skip)            export, flame report, golden CI
//!                                   event logs (ServeStats itself is
//!                                   folded from the same events)
//! ```
//!
//! * **[`Request`]** — prompt, per-request engine choice
//!   ([`EngineChoice`]: NTP / MEDUSA chain / tree / syntax-aligned /
//!   draft-verify / grammar-tree), decode budgets, arrival tick, and an
//!   optional SLO deadline tick. Grammar-tree requests run against the
//!   engine's shared [`verispec_grammar::GrammarOracle`]
//!   ([`ServeEngine::with_grammar`]): candidate trees are
//!   viability-filtered and dead-tail pruned at propose time, each
//!   step's prune accounting is emitted as a
//!   [`verispec_trace::EventKind::GrammarPrune`] event, and freed
//!   candidate slots re-widen surviving branches within the budget the
//!   per-tick capacity pass charged.
//! * **[`Scheduler`]** — selects each tick's batch under a fairness
//!   policy ([`TickOrder`], including earliest-deadline-first for
//!   SLO-carrying requests), with an aging guard that bounds every
//!   request's service gap by its forcing threshold plus a few
//!   rotations (no starvation under *any* order, including streaming
//!   admission — arrivals join the same queue the guard covers), and
//!   rollback-aware preemption: between steps a stepper holds exactly
//!   its committed context (speculation already rolled back), so a
//!   victim's sessions can be dropped and later rebuilt by replaying
//!   `prompt + generated` — an exact reconstruction.
//! * **The speculation-policy layer** (`verispec-core::policy`) — each
//!   tick, *how much speculation to buy per request* is a
//!   [`verispec_core::SpecPolicy`] decision, not a frozen config:
//!   under a per-tick verify capacity
//!   ([`ServeConfig::tick_capacity`] or the policy's own
//!   `tick_budget`) the engine walks the scheduler's order, queries
//!   the policy with each request's own acceptance history and the
//!   remaining budget, pins the decided shape on the stepper, and
//!   defers requests that do not fit (head-of-order always steps, so
//!   the no-starvation bound survives). Static = configured shapes,
//!   bit-identical to the pre-policy engine; adaptive = pure function
//!   of the request's history (served == serial, proptest-pinned);
//!   budgeted = shrink-to-fit packing. Load-shedding admission
//!   control ([`ServeConfig::shed_depth`]) rejects ready-queue
//!   overflow newest-first, deterministically on both the batch and
//!   streaming paths.
//! * **[`ServeEngine`]** — the tick loop. The batch's propose phase
//!   (multi-head logits) and verify phase (candidate-tree scoring) are
//!   fused across requests into single
//!   [`verispec_lm::multi_logits_many`] / [`verispec_lm::verify_many`]
//!   passes over the shared model, so concurrent generations share
//!   trunk/head matmuls instead of issuing one small batch each.
//!   Streaming admission ([`ServeEngine::drain_arrivals`] /
//!   [`ServeEngine::run_streaming`]) feeds the queue from an `mpsc`
//!   channel each tick so open-loop arrivals join mid-flight; a
//!   memory budget ([`ServeConfig::session_cap`]) LRU-evicts queued
//!   prefix forks through the same exact-replay path so thousands of
//!   queued arrivals cannot grow the session pool unboundedly; and
//!   per-request commit ticks plus wall timestamps land in
//!   [`Completion`] for the latency telemetry in `verispec-load`.
//! * **[`PrefixCache`]** (`prefix`) — the fleet-wide prefix cache:
//!   a copy-on-write radix trie over token prefixes whose nodes own
//!   frozen [`verispec_lm::SnapshotSession`] snapshots. When
//!   [`ServeConfig::prefix_cache`] is on, admission walks the trie to
//!   the deepest cached match, forks that snapshot, and ingests only
//!   the unmatched suffix — O(prompt) prefill becomes O(suffix) on a
//!   hit, which [`ServeConfig::ingest_rate`] makes visible in tick
//!   space (hits skip warmup ticks). Misses insert new snapshots
//!   (split-on-divergence); residency is charged against
//!   [`ServeConfig::session_cap`] and evicted LRU-leaf-first through
//!   the same exact-replay path as queued forks, so a later miss
//!   rebuilds bit-identically. [`ServeEngine::warm_prefix`] seeds a
//!   stem; [`ServeEngine::prefix_match_depth`] is the read-only probe
//!   the dispatcher routes by.
//! * **[`serve_all`] / [`serve_streaming`] / [`serve_all_threaded`]** —
//!   drivers: closed-loop batch, open-loop channel-fed, and the
//!   `std::thread::scope` worker pool sharding requests across engines
//!   over the same model.
//! * **[`Dispatcher`]** (`dispatch`) — the multi-worker streaming
//!   layer: channel-fed arrivals are *routed* across N independent
//!   engines ([`RoutePolicy`]: round-robin, join-shortest-queue by
//!   [`ServeEngine::ready_depth`], join-least-loaded by
//!   [`ServeEngine::outstanding_cost`] — the speculation policy's
//!   price of each worker's in-flight work — cache-aware
//!   prefix-affine, which probes every worker's prefix cache with
//!   [`ServeEngine::prefix_match_depth`] and routes to the deepest
//!   match so repeat stems land where their snapshots live, or a
//!   pinned replay of a recorded assignment). Each worker owns its
//!   session pool and tick
//!   loop and serves its shard exactly as a standalone engine, so
//!   dispatch adds routing without touching serving semantics;
//!   [`DispatchReport`] carries merged plus per-worker
//!   [`ServeStats`] and the realized assignment.
//! * **[`ThreadedDispatcher`]** (`threaded`) — the same fleet with
//!   true parallelism: one OS thread per worker inside
//!   `std::thread::scope`, each running its private engine (built
//!   in-thread — engines hold live sessions and are not `Send`) with
//!   its own [`verispec_trace::EventLog`], coordinated over an mpsc
//!   [`WorkerCmd`]/[`WorkerReply`] protocol. Synchronization exists
//!   only where the lockstep semantics require it: route-time probe
//!   round-trips for load-aware policies and one tick barrier per
//!   paced round while arrivals pend; after the last arrival (and for
//!   the whole batch drive) workers free-run barrier-free. Reports
//!   are bit-identical to the lockstep oracle and merged event
//!   streams are identical under
//!   [`verispec_trace::canonicalize_fleet_events`]
//!   (`tests/proptest_dispatch_threaded.rs`); [`serve_all_threaded`]
//!   is a thin wrapper over the round-robin batch drive.
//! * **[`FleetRuntime`]** (`runtime`) — the unified drive facade and
//!   the fault-injection layer: pick the backend
//!   ([`Backend::Lockstep`] / [`Backend::Threaded`]) at construction,
//!   the drive mode as a value ([`Drive::Batch`] / [`Drive::Paced`] /
//!   [`Drive::Streaming`]), and optionally install a [`FaultPlan`] —
//!   deterministic, trace-specified [`FaultEvent::CrashWorker`] /
//!   [`FaultEvent::RestartWorker`] events plus per-tenant
//!   [`ClassShare`] weighted-fairness shares. On a crash every
//!   in-flight and queued request migrates to surviving workers by
//!   exact replay (outputs stay token-identical to the fault-free
//!   run); with the whole fleet dead, arrivals defer under
//!   backpressure until a restart (or shed deterministically). Both
//!   backends execute the same generic drive loops, so the legacy
//!   `run*` entry points are now thin wrappers and fault-injected
//!   runs inherit the threaded==lockstep parity guarantee.
//! * **Structured tracing** (`verispec-trace`) — every lifecycle
//!   transition (submission, routing decision with its probe values,
//!   cache walk, admission, per-step propose/verify/commit with the
//!   policy-decided shape, deferral, preemption, eviction, shed,
//!   finish, deadline outcome, per-tick batch composition and budget
//!   consumption) is emitted as a tick-stamped
//!   [`verispec_trace::TraceEvent`] into the engine's
//!   [`verispec_trace::TraceSink`] ([`ServeEngine::with_sink`] /
//!   [`Dispatcher::with_sink`]; the no-op default keeps the untraced
//!   hot path bit-identical). [`ServeStats`] counters with
//!   event-stream equivalents are folded from those same events in
//!   one place (`ServeStats::apply_event`), so the counters, the
//!   metrics registry, and the exported Chrome trace can never
//!   disagree about a run.
//!
//! # The invariant
//!
//! Serving is a **performance mechanism, never a semantic one**: every
//! request's token stream is bit-identical to running the serial
//! single-session engine (`decode_ntp` / `decode_speculative` /
//! `decode_draft_speculative`) on it alone — for greedy decoding and
//! seeded sampling alike, under any scheduler order, batch size,
//! preemption pattern, or fusion setting. Three layers guarantee it:
//! the steppers are the *same code* the serial engines run; the fused
//! kernels are bit-identical per input regardless of batch
//! composition; and each request owns its sampler and sessions, so
//! scheduling cannot perturb its randomness. `tests/proptest_serve.rs`
//! pins the property over random request mixes, engines, seeds, tick
//! orders, and session caps, along with the no-starvation bound;
//! `tests/proptest_policy.rs` extends it to adaptive speculation
//! (decisions are pure functions of each request's own history, so
//! served == the serial policy-driven engine under preemption and
//! eviction too); `verispec-load`'s streaming proptest additionally
//! pins streaming admission == batch [`serve_all`] under random
//! arrival processes, capacities, deadlines, and eviction pressure.
//! The one deliberate exception is
//! [`verispec_core::BudgetedPolicy`]: its shrink-to-fit shapes depend
//! on batch composition, so *sampled* outputs may differ from the
//! serial run — it trades that for packing the tick under overload
//! (greedy requests stay lossless under any shape).
//!
//! # Example
//!
//! ```
//! use verispec_core::DecodeConfig;
//! use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig};
//! use verispec_serve::{serve_all, EngineChoice, Request, ServeConfig};
//!
//! let model = MlpLm::new(MlpLmConfig::tiny(16));
//! let cfg = DecodeConfig { max_tokens: 8, ..Default::default() };
//! let requests = vec![
//!     Request::new(0, vec![1, 2], EngineChoice::MedusaChain, cfg.clone()),
//!     Request::new(1, vec![3], EngineChoice::Ntp, cfg),
//! ];
//! let report = serve_all(
//!     &model,
//!     None,
//!     requests,
//!     &ServeConfig::concurrency(2),
//!     &GpuCostModel::codellama_like(),
//! );
//! assert_eq!(report.completions.len(), 2);
//! ```

#![deny(missing_docs)]

pub mod dispatch;
pub mod engine;
pub mod prefix;
pub mod request;
pub mod runtime;
pub mod scheduler;
pub mod threaded;

pub use dispatch::{
    dispatch_all, dispatch_streaming, DispatchConfig, DispatchReport, Dispatcher, RoutePolicy,
    RouteProbes,
};
pub use engine::{
    serve_all, serve_all_threaded, serve_streaming, ServeConfig, ServeEngine, ServeReport,
    ServeStats, ShedRequest,
};
pub use prefix::PrefixCache;
pub use request::{Completion, EngineChoice, Request};
pub use runtime::{Backend, ClassShare, Drive, FaultEvent, FaultPlan, FleetRun, FleetRuntime};
pub use scheduler::{ActiveView, Scheduler, TickOrder};
pub use threaded::{ThreadedDispatcher, ThreadedRun, WorkerCmd, WorkerHandle, WorkerReply};

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_core::{decode_draft_speculative, decode_ntp, decode_speculative, DecodeConfig};
    use verispec_lm::{
        GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, Sampling, TokenId,
    };

    fn model() -> MlpLm {
        MlpLm::new(MlpLmConfig {
            vocab: 14,
            d_emb: 6,
            d_hidden: 12,
            context: 4,
            n_heads: 3,
            seed: 33,
        })
    }

    fn draft() -> NgramLm {
        let mut lm = NgramLm::new(3, 14);
        let seq: Vec<TokenId> = (0..200).map(|i| 6 + (i % 3) as TokenId).collect();
        lm.train_sequence(&seq);
        lm
    }

    fn mixed_requests(max_tokens: usize) -> Vec<Request> {
        let engines = [
            EngineChoice::Ntp,
            EngineChoice::MedusaChain,
            EngineChoice::MedusaTree(vec![2, 2]),
            EngineChoice::SyntaxAligned { tree: None },
            EngineChoice::SyntaxAligned {
                tree: Some(vec![2]),
            },
            EngineChoice::DraftVerify { gamma: 3 },
            // Without an oracle attached this degrades to plain
            // syntax-aligned speculation — the parity tests cover it.
            EngineChoice::GrammarTree {
                tree: Some(vec![2]),
            },
        ];
        engines
            .into_iter()
            .enumerate()
            .map(|(i, engine)| {
                let cfg = DecodeConfig {
                    max_tokens,
                    sampling: if i % 2 == 0 {
                        Sampling::Greedy
                    } else {
                        Sampling::temperature(0.7)
                    },
                    seed: i as u64 * 31 + 5,
                    ..Default::default()
                };
                Request::new(i as u64, vec![1 + i as TokenId, 2, 3], engine, cfg)
            })
            .collect()
    }

    fn serial_output(m: &MlpLm, d: &NgramLm, req: &Request, cost: &GpuCostModel) -> Vec<TokenId> {
        match &req.engine {
            EngineChoice::Ntp => {
                decode_ntp(m, &req.prompt, &req.engine.decode_config(&req.cfg), cost).tokens
            }
            EngineChoice::DraftVerify { .. } => {
                let dcfg = req.engine.draft_config(&req.cfg).expect("draft cfg");
                decode_draft_speculative(m, d, &req.prompt, &dcfg, cost)
                    .0
                    .tokens
            }
            _ => {
                decode_speculative(m, &req.prompt, &req.engine.decode_config(&req.cfg), cost).tokens
            }
        }
    }

    #[test]
    fn served_outputs_match_serial_engines_exactly() {
        let m = model();
        let d = draft();
        let cost = GpuCostModel::codellama_like();
        let requests = mixed_requests(14);
        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| serial_output(&m, &d, r, &cost))
            .collect();
        for concurrency in [1usize, 3, 6] {
            let report = serve_all(
                &m,
                Some(&d),
                requests.clone(),
                &ServeConfig::concurrency(concurrency),
                &cost,
            );
            assert_eq!(report.completions.len(), requests.len());
            for (c, want) in report.completions.iter().zip(&expected) {
                assert_eq!(
                    &c.output.tokens, want,
                    "request {} diverged at concurrency {concurrency}",
                    c.id
                );
            }
        }
    }

    #[test]
    fn unfused_engine_produces_identical_outputs() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let mut requests = mixed_requests(10);
        requests.retain(|r| !matches!(r.engine, EngineChoice::DraftVerify { .. }));
        let fused = serve_all(
            &m,
            None,
            requests.clone(),
            &ServeConfig::concurrency(4),
            &cost,
        );
        let mut engine = ServeEngine::new_unfused(&m, ServeConfig::concurrency(4));
        for r in requests {
            engine.submit(r);
        }
        let unfused = engine.run(&cost);
        for (a, b) in fused.completions.iter().zip(&unfused.completions) {
            assert_eq!(a.output.tokens, b.output.tokens);
        }
        assert!(fused.stats.fused_verify_calls > 0, "fusion actually ran");
        assert_eq!(unfused.stats.fused_verify_calls, 0);
        assert!(unfused.stats.local_verify_calls > 0);
    }

    #[test]
    fn preemption_parks_and_resumes_without_changing_outputs() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        // Two long early requests fill the pool; a later arrival must
        // preempt one of them. NTP with an unreachable EOS id commits
        // exactly one token per tick, so the long runs provably outlast
        // the preemption deadline.
        let mk = |id: u64, arrival: u64, max_tokens: usize, engine: EngineChoice| Request {
            arrival,
            ..Request::new(
                id,
                vec![1 + id as TokenId, 2],
                engine,
                DecodeConfig {
                    max_tokens,
                    seed: id,
                    eos: 999,
                    ..Default::default()
                },
            )
        };
        let requests = vec![
            mk(0, 0, 30, EngineChoice::Ntp),
            mk(1, 0, 30, EngineChoice::Ntp),
            mk(2, 3, 6, EngineChoice::MedusaChain),
        ];
        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| match &r.engine {
                EngineChoice::Ntp => {
                    decode_ntp(&m, &r.prompt, &r.engine.decode_config(&r.cfg), &cost).tokens
                }
                _ => {
                    decode_speculative(&m, &r.prompt, &r.engine.decode_config(&r.cfg), &cost).tokens
                }
            })
            .collect();
        let cfg = ServeConfig {
            max_active: 2,
            max_batch: 2,
            preempt_wait: Some(2),
            ..Default::default()
        };
        let report = serve_all(&m, None, requests, &cfg, &cost);
        assert!(report.stats.preemptions > 0, "preemption must trigger");
        for (c, want) in report.completions.iter().zip(&expected) {
            assert_eq!(&c.output.tokens, want, "request {} diverged", c.id);
        }
        // The preempted request records its round trip.
        assert!(report.completions.iter().any(|c| c.preemptions > 0));
    }

    #[test]
    fn prefix_forked_sessions_serve_identically() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let shared: Vec<TokenId> = vec![1, 2, 3];
        let mut prefix_session = m.session();
        prefix_session.append(&shared);
        let mut engine = ServeEngine::new(&m, ServeConfig::concurrency(3));
        let mut expected = Vec::new();
        for i in 0..3u64 {
            let mut prompt = shared.clone();
            prompt.push(4 + i as TokenId);
            let req = Request::new(
                i,
                prompt,
                EngineChoice::SyntaxAligned { tree: None },
                DecodeConfig {
                    max_tokens: 10,
                    seed: i,
                    ..Default::default()
                },
            );
            expected.push(
                decode_speculative(&m, &req.prompt, &req.engine.decode_config(&req.cfg), &cost)
                    .tokens,
            );
            let fork = prefix_session.fork().expect("mlp sessions fork");
            engine.submit_with_session(req, fork);
        }
        let report = engine.run(&cost);
        for (c, want) in report.completions.iter().zip(&expected) {
            assert_eq!(&c.output.tokens, want, "prefix-forked request diverged");
        }
    }

    #[test]
    fn threaded_worker_pool_matches_single_engine() {
        let m = model();
        let d = draft();
        let cost = GpuCostModel::codellama_like();
        let requests = mixed_requests(12);
        let single = serve_all(
            &m,
            Some(&d),
            requests.clone(),
            &ServeConfig::concurrency(6),
            &cost,
        );
        let pooled = serve_all_threaded(
            &m,
            Some(&d as &(dyn LanguageModel + Sync)),
            requests,
            &ServeConfig::concurrency(3),
            &cost,
            3,
        );
        assert_eq!(single.completions.len(), pooled.completions.len());
        for (a, b) in single.completions.iter().zip(&pooled.completions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.output.tokens, b.output.tokens);
        }
    }

    #[test]
    fn streaming_admission_matches_batch_run_tick_for_tick() {
        let m = model();
        let d = draft();
        let cost = GpuCostModel::codellama_like();
        // Staggered arrivals, including a sparse gap the idle
        // fast-forward must bridge identically on both paths.
        let mut requests = mixed_requests(10);
        for (i, r) in requests.iter_mut().enumerate() {
            r.arrival = [0u64, 0, 3, 3, 40, 41][i % 6];
        }
        let cfg = ServeConfig {
            max_active: 3,
            max_batch: 2,
            preempt_wait: Some(2),
            ..Default::default()
        };
        let batch = serve_all(&m, Some(&d), requests.clone(), &cfg, &cost);
        let (tx, rx) = std::sync::mpsc::channel();
        for r in requests {
            tx.send(r).expect("receiver alive");
        }
        drop(tx);
        let streamed = serve_streaming(&m, Some(&d), rx, &cfg, &cost);
        assert_eq!(batch.completions.len(), streamed.completions.len());
        for (a, b) in batch.completions.iter().zip(&streamed.completions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.output.tokens, b.output.tokens);
            assert_eq!(a.output.trace, b.output.trace);
            assert_eq!(a.submitted, b.submitted);
            assert_eq!(a.admitted, b.admitted, "request {} admission tick", a.id);
            assert_eq!(a.finished, b.finished);
            assert_eq!(a.step_ticks, b.step_ticks, "request {} commit ticks", a.id);
        }
        assert_eq!(batch.stats.ticks, streamed.stats.ticks);
        assert!(
            streamed.stats.idle_ticks_skipped > 0,
            "the sparse tail must exercise the idle fast-forward"
        );
    }

    #[test]
    fn session_cap_evicts_idle_forks_without_changing_outputs() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let shared: Vec<TokenId> = vec![1, 2, 3];
        let mut prefix = m.session();
        prefix.append(&shared);
        let mk_requests = || -> Vec<Request> {
            (0..6u64)
                .map(|i| {
                    let mut prompt = shared.clone();
                    prompt.push(4 + (i % 3) as TokenId);
                    Request::new(
                        i,
                        prompt,
                        EngineChoice::SyntaxAligned { tree: None },
                        DecodeConfig {
                            max_tokens: 8,
                            seed: i,
                            ..Default::default()
                        },
                    )
                })
                .collect()
        };
        let run = |cap: Option<usize>| -> ServeReport {
            let cfg = ServeConfig {
                max_active: 2,
                max_batch: 2,
                session_cap: cap,
                ..Default::default()
            };
            let mut engine = ServeEngine::new(&m, cfg);
            // Fork the shared-prefix session per matching request at
            // submit time (the explicit successor of the retired
            // engine-held `with_prefix` plumbing); forks queue through
            // the same cap-charged, LRU-evictable path.
            for r in mk_requests() {
                if r.prompt.starts_with(prefix.tokens()) {
                    if let Some(fork) = prefix.fork() {
                        engine.submit_with_session(r, fork);
                        continue;
                    }
                }
                engine.submit(r);
            }
            engine.run(&cost)
        };
        let unbounded = run(None);
        let capped = run(Some(3));
        // Six queued forks against a budget of 3 (2 of which the active
        // pool occupies) must evict.
        assert!(unbounded.stats.session_evictions == 0);
        assert!(unbounded.stats.peak_resident_sessions >= 6);
        assert!(capped.stats.session_evictions > 0, "cap must evict forks");
        // The cap binds: apart from the submit-time transient (+1
        // before enforcement runs), residency never exceeds the budget.
        assert!(capped.stats.peak_resident_sessions <= 3 + 1);
        assert!(capped.stats.peak_resident_sessions < unbounded.stats.peak_resident_sessions);
        for (a, b) in unbounded.completions.iter().zip(&capped.completions) {
            assert_eq!(a.output.tokens, b.output.tokens, "eviction changed output");
            assert_eq!(a.output.trace, b.output.trace);
        }
    }

    #[test]
    fn tick_capacity_defers_steps_but_static_outputs_never_change() {
        // Charging candidate tokens against a per-tick verify budget
        // changes *when* requests step, never *what* they generate:
        // under the static policy every request keeps its configured
        // shape and its token stream equals the serial engine's.
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let requests: Vec<Request> = (0..6u64)
            .map(|i| {
                Request::new(
                    i,
                    vec![1 + (i % 4) as TokenId, 2],
                    EngineChoice::SyntaxAligned {
                        tree: Some(vec![2, 2]),
                    },
                    DecodeConfig {
                        max_tokens: 10,
                        sampling: if i % 2 == 0 {
                            verispec_lm::Sampling::Greedy
                        } else {
                            Sampling::temperature(0.7)
                        },
                        seed: i,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| {
                decode_speculative(&m, &r.prompt, &r.engine.decode_config(&r.cfg), &cost).tokens
            })
            .collect();
        let free = serve_all(
            &m,
            None,
            requests.clone(),
            &ServeConfig::concurrency(6),
            &cost,
        );
        let capped_cfg = ServeConfig {
            // Tree [2,2] over 3 heads costs 1 + 3·4 = 13 per step; a
            // budget of 16 fits one full tree per tick, so the rest of
            // the batch defers.
            tick_capacity: Some(16),
            ..ServeConfig::concurrency(6)
        };
        let capped = serve_all(&m, None, requests, &capped_cfg, &cost);
        assert!(
            capped.stats.deferred_steps > 0,
            "the budget must actually bind"
        );
        assert!(
            capped.stats.ticks > free.stats.ticks,
            "deferred steps stretch the schedule"
        );
        for (c, want) in capped.completions.iter().zip(&expected) {
            assert_eq!(&c.output.tokens, want, "request {} diverged", c.id);
        }
    }

    #[test]
    fn budgeted_policy_packs_the_tick_and_greedy_stays_lossless() {
        use verispec_core::BudgetedPolicy;
        // Same verify capacity, two allocation policies: static defers
        // whole requests, budgeted shrinks shapes to pack the tick.
        // Greedy speculation is lossless under any shape, so outputs
        // still equal the serial engine's token-for-token.
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let requests: Vec<Request> = (0..6u64)
            .map(|i| {
                Request::new(
                    i,
                    vec![1 + (i % 4) as TokenId, 2],
                    EngineChoice::SyntaxAligned {
                        tree: Some(vec![2, 2]),
                    },
                    DecodeConfig {
                        max_tokens: 10,
                        seed: i,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| {
                decode_speculative(&m, &r.prompt, &r.engine.decode_config(&r.cfg), &cost).tokens
            })
            .collect();
        let capacity = 16usize;
        let run_static = {
            let cfg = ServeConfig {
                tick_capacity: Some(capacity),
                ..ServeConfig::concurrency(6)
            };
            serve_all(&m, None, requests.clone(), &cfg, &cost)
        };
        let policy = BudgetedPolicy { per_tick: capacity };
        let run_budgeted = {
            let mut engine = ServeEngine::new(&m, ServeConfig::concurrency(6)).with_policy(&policy);
            for r in requests.clone() {
                engine.submit(r);
            }
            engine.run(&cost)
        };
        assert!(
            run_budgeted.stats.deferred_steps < run_static.stats.deferred_steps,
            "shrink-to-fit must pack more requests per tick ({} vs {})",
            run_budgeted.stats.deferred_steps,
            run_static.stats.deferred_steps
        );
        for (c, want) in run_budgeted.completions.iter().zip(&expected) {
            assert_eq!(
                &c.output.tokens, want,
                "greedy request {} must stay lossless under shrunk trees",
                c.id
            );
        }
    }

    #[test]
    fn adaptive_policy_served_equals_serial() {
        use verispec_core::{decode_speculative_with_policy, AdaptivePolicy};
        // Adaptation is a pure function of the request's own history,
        // so the served run and the serial policy-driven engine make
        // identical per-step decisions — sampled requests included.
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let policy = AdaptivePolicy::default();
        let requests: Vec<Request> = (0..5u64)
            .map(|i| {
                Request::new(
                    i,
                    vec![1 + (i % 4) as TokenId, 2, 3],
                    EngineChoice::SyntaxAligned {
                        tree: Some(vec![2, 2]),
                    },
                    DecodeConfig {
                        max_tokens: 14,
                        sampling: Sampling::temperature(0.8),
                        seed: 31 * i + 7,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| {
                decode_speculative_with_policy(
                    &m,
                    &r.prompt,
                    &r.engine.decode_config(&r.cfg),
                    &cost,
                    &policy,
                )
                .tokens
            })
            .collect();
        let mut engine = ServeEngine::new(&m, ServeConfig::concurrency(3)).with_policy(&policy);
        for r in requests {
            engine.submit(r);
        }
        let report = engine.run(&cost);
        for (c, want) in report.completions.iter().zip(&expected) {
            assert_eq!(&c.output.tokens, want, "request {} diverged", c.id);
        }
        // The report surfaces what the speculation cost and cashed.
        assert!(report.stats.proposed_tokens > 0);
        assert!(report
            .completions
            .iter()
            .all(|c| c.accepted_tokens <= c.proposed_tokens));
    }

    #[test]
    fn shed_depth_rejects_newest_overflow_identically_on_both_paths() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        // Ten immediate arrivals against one slot and a ready-queue
        // depth of 2: the newest overflow must be shed.
        let requests: Vec<Request> = (0..10u64)
            .map(|i| {
                Request::new(
                    i,
                    vec![1 + (i % 4) as TokenId, 2],
                    EngineChoice::MedusaChain,
                    DecodeConfig {
                        max_tokens: 6,
                        seed: i,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let cfg = ServeConfig {
            max_active: 1,
            max_batch: 1,
            shed_depth: Some(2),
            ..Default::default()
        };
        let batch = serve_all(&m, None, requests.clone(), &cfg, &cost);
        assert!(batch.stats.shed_requests > 0, "overflow must shed");
        assert_eq!(
            batch.completions.len() + batch.shed.len(),
            requests.len(),
            "every request is either served or shed"
        );
        // Newest-first: the shed set is a suffix of the id space (all
        // arrivals share tick 0, so id breaks the tie).
        let min_shed = batch.shed.iter().map(|s| s.id).min().expect("nonempty");
        assert!(batch.completions.iter().all(|c| c.id < min_shed));
        // Streaming sheds the same requests at the same ticks.
        let (tx, rx) = std::sync::mpsc::channel();
        for r in requests {
            tx.send(r).expect("receiver alive");
        }
        drop(tx);
        let streamed = serve_streaming(&m, None, rx, &cfg, &cost);
        assert_eq!(batch.shed, streamed.shed);
        for (a, b) in batch.completions.iter().zip(&streamed.completions) {
            assert_eq!(a.output.tokens, b.output.tokens);
            assert_eq!(a.step_ticks, b.step_ticks);
        }
    }

    #[test]
    fn edf_order_improves_deadline_attainment_under_pressure() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        // Eight long generations, one served at a time; the *latest*
        // submissions carry the tightest deadlines, so round-robin
        // (which serves in admission order) misses them while EDF
        // reorders to meet them.
        let mk_requests = || -> Vec<Request> {
            (0..8u64)
                .map(|i| {
                    Request::new(
                        i,
                        vec![1 + (i % 4) as TokenId, 2],
                        EngineChoice::Ntp,
                        DecodeConfig {
                            max_tokens: 8,
                            seed: i,
                            eos: 999,
                            ..Default::default()
                        },
                    )
                    .with_deadline(20 + 4 * (8 - i))
                })
                .collect()
        };
        let attainment = |order: TickOrder| -> usize {
            let cfg = ServeConfig {
                max_active: 8,
                max_batch: 2,
                order,
                ..Default::default()
            };
            let report = serve_all(&m, None, mk_requests(), &cfg, &cost);
            report
                .completions
                .iter()
                .filter(|c| c.met_deadline() == Some(true))
                .count()
        };
        let rr = attainment(TickOrder::RoundRobin);
        let edf = attainment(TickOrder::Edf);
        assert!(
            edf > rr,
            "EDF must meet more deadlines than round-robin ({edf} vs {rr})"
        );
    }

    #[test]
    fn grammar_tree_served_equals_serial_grammar_engine() {
        use verispec_core::decode_grammar_speculative;
        use verispec_grammar::GrammarOracle;
        let m = model();
        let cost = GpuCostModel::codellama_like();
        // A mixed byte map over the model's 14-token vocab: specials
        // transparent, mostly benign Verilog bytes, one lethal control
        // byte so the viability filter actually fires.
        let bytes: Vec<Vec<u8>> = (0..14usize)
            .map(|id| match id {
                0..=4 => Vec::new(),
                5 => b"(".to_vec(),
                6 => b")".to_vec(),
                7 => b"a".to_vec(),
                8 => b" ".to_vec(),
                9 => b";".to_vec(),
                10 => vec![0x07],
                11 => b"{".to_vec(),
                12 => b"}".to_vec(),
                _ => b"b".to_vec(),
            })
            .collect();
        let oracle = GrammarOracle::new(bytes);
        let requests: Vec<Request> = (0..4u64)
            .map(|i| {
                Request::new(
                    i,
                    vec![1 + (i % 4) as TokenId, 2, 3],
                    EngineChoice::GrammarTree {
                        tree: Some(vec![2, 2]),
                    },
                    DecodeConfig {
                        max_tokens: 12,
                        sampling: if i % 2 == 0 {
                            Sampling::Greedy
                        } else {
                            Sampling::temperature(0.7)
                        },
                        seed: 31 * i + 5,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| {
                decode_grammar_speculative(
                    &m,
                    &oracle,
                    &r.prompt,
                    &r.engine.decode_config(&r.cfg),
                    &cost,
                )
                .tokens
            })
            .collect();
        let mut engine = ServeEngine::new(&m, ServeConfig::concurrency(2)).with_grammar(&oracle);
        for r in requests.clone() {
            engine.submit(r);
        }
        let report = engine.run(&cost);
        for (c, want) in report.completions.iter().zip(&expected) {
            assert_eq!(&c.output.tokens, want, "request {} diverged", c.id);
        }
        // Prune accounting flows through the event fold into the stats.
        assert!(report.stats.grammar_considered > 0);
        assert_eq!(
            report.stats.grammar_considered,
            report.stats.grammar_pruned + report.stats.grammar_surviving
        );
        // Without an oracle the same requests degrade to plain
        // syntax-aligned speculation, with zero grammar accounting.
        let plain: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| {
                decode_speculative(&m, &r.prompt, &r.engine.decode_config(&r.cfg), &cost).tokens
            })
            .collect();
        let mut engine = ServeEngine::new(&m, ServeConfig::concurrency(2));
        for r in requests {
            engine.submit(r);
        }
        let degraded = engine.run(&cost);
        assert_eq!(degraded.stats.grammar_considered, 0);
        for (c, want) in degraded.completions.iter().zip(&plain) {
            assert_eq!(&c.output.tokens, want, "degraded request {} diverged", c.id);
        }
    }

    #[test]
    fn service_gaps_respect_the_aging_bound() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        // Adversarial seeded order, tight batch: aging must still bound
        // every request's service gap.
        let requests: Vec<Request> = (0..8u64)
            .map(|i| {
                Request::new(
                    i,
                    vec![1 + (i % 4) as TokenId, 2],
                    EngineChoice::MedusaChain,
                    DecodeConfig {
                        max_tokens: 12,
                        seed: i,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let cfg = ServeConfig {
            max_active: 8,
            max_batch: 2,
            order: TickOrder::Seeded(0xFEED),
            ..Default::default()
        };
        let bound = Scheduler::new(cfg.order, cfg.max_active, cfg.max_batch).starvation_bound();
        let report = serve_all(&m, None, requests, &cfg, &cost);
        for c in &report.completions {
            assert!(
                c.max_service_gap <= bound + cfg.max_active as u64,
                "request {} gap {} exceeds bound {}",
                c.id,
                c.max_service_gap,
                bound
            );
        }
    }
}
