//! Multi-worker streaming dispatch: routing channel-fed arrivals
//! across N independent [`ServeEngine`] workers.
//!
//! One fused engine is one "GPU". Past its saturation point the only
//! way to keep tail latency down is more workers — and then the
//! question becomes *routing*: which worker gets the next arrival?
//! This module adds that layer without touching serving semantics:
//!
//! ```text
//!   mpsc arrivals ──► Dispatcher ──route──► worker 0: ServeEngine
//!   (open-loop,         │   ▲               worker 1: ServeEngine
//!    deadlines)         │   │ probes        …        (own session
//!                       │   │                         pool, queue,
//!     RoutePolicy ──────┘   ├ ready_depth()           prefix cache,
//!     rr / jsq /            ├ outstanding_cost()      clock, tick
//!     least-loaded /        └ prefix_match_depth()    loop)
//!     pinned /
//!     prefix-affine         lockstep drive: each round, every worker
//!                           with work runs one tick (idle workers
//!                           fast-forward their own clocks)
//!                                    │
//!                                    ▼
//!              DispatchReport{completions, shed, merged stats,
//!                             per-worker stats, assignments}
//! ```
//!
//! # Cache-aware routing
//!
//! With per-worker prefix caches enabled
//! ([`ServeConfig::prefix_cache`]), worker choice affects *where* each
//! prompt's stem ends up resident. [`RoutePolicy::PrefixAffine`]
//! exploits that: it probes each worker's trie for the deepest cached
//! prefix of the incoming prompt and routes to the warmest worker, so
//! a Zipf-shared-stem workload partitions its stems across the fleet
//! instead of smearing every stem over every worker (what round-robin
//! does, churning each cache with everyone's stems). Routing stays a
//! performance mechanism: tokens are bit-identical under every policy,
//! only hit rates and ingestion work move.
//!
//! # Determinism
//!
//! Routing happens at *receipt*: each drained request is assigned once,
//! by the policy, from the workers' probe values at that instant — and
//! the realized assignment is recorded in
//! [`DispatchReport::assignments`]. Given an assignment, everything
//! downstream is the deterministic single-engine machinery: each worker
//! serves its shard exactly as a standalone [`ServeEngine`] would serve
//! it alone (same admission ticks, same shedding, same deadlines, same
//! tokens), because workers share nothing but the read-only model.
//! [`RoutePolicy::Pinned`] replays a recorded assignment, so a run can
//! be reproduced bit-for-bit even when the original routing reacted to
//! live load. With every arrival sent before it falls due (the batch
//! pattern), probe values themselves are deterministic, so rr / jsq /
//! least-loaded runs are reproducible end to end.
//!
//! # The invariant, again
//!
//! Dispatch is a performance mechanism, never a semantic one: every
//! request's token stream is bit-identical to the serial single-session
//! engine's under **any** worker count, routing policy, and send
//! timing, and a one-worker dispatcher is tick-identical to
//! [`ServeEngine::run_streaming`] (the dispatcher adds zero scheduling
//! noise). `tests/proptest_dispatch.rs` pins both, plus
//! shedding/deadline determinism under pinned assignments.
//!
//! # The threaded sibling
//!
//! This module's drives advance the fleet *lockstep* on one thread —
//! deliberately: they are the deterministic oracle. The
//! [`crate::threaded`] module runs the same fleet with one OS thread
//! per worker over an mpsc command/reply protocol, reusing this
//! module's `Router` core so routing decisions cannot diverge, and
//! is proptest-pinned to produce tick-for-token identical reports
//! (`tests/proptest_dispatch_threaded.rs`).

use crate::engine::{ServeConfig, ServeEngine, ServeReport, ServeStats, ShedRequest};
use crate::request::{Completion, Request};
use serde::{Deserialize, Serialize};
use verispec_core::SpecPolicy;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm};
use verispec_trace::{EventKind, TraceEvent, TraceSink, NOOP};

/// How the dispatcher picks a worker for each arrival.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Cyclic assignment in receipt order — load-blind, the baseline.
    RoundRobin,
    /// Join-shortest-queue: the worker with the smallest ready-depth
    /// ([`ServeEngine::ready_depth`] — active plus queued requests)
    /// wins; ties go to the lowest worker index.
    JoinShortestQueue,
    /// Join-least-loaded: the worker with the smallest outstanding
    /// candidate-token cost ([`ServeEngine::outstanding_cost`] — what
    /// the speculation policy prices its in-flight work at) wins; ties
    /// go to the lowest worker index. Unlike JSQ this sees *how heavy*
    /// each request is (budget × speculation shape), not just how many
    /// there are.
    LeastLoaded,
    /// Replays a fixed `request id → worker` assignment (e.g. a prior
    /// run's [`DispatchReport::assignments`]) — the determinism lever:
    /// with the assignment pinned, shedding, deadlines, and every tick
    /// stamp reproduce exactly.
    Pinned(Vec<(u64, usize)>),
    /// Cache-aware routing: probe every worker's prefix cache for the
    /// deepest cached prefix of the request's prompt
    /// ([`ServeEngine::prefix_match_depth`]) and route to the worker
    /// already holding the longest stem, so stem-sharing requests pile
    /// onto the worker whose trie is already warm instead of
    /// re-ingesting the stem fleet-wide. Ties (including the all-cold
    /// case, depth 0 everywhere) break by least outstanding cost, then
    /// lowest worker index — so on a cache-less fleet this degrades to
    /// [`RoutePolicy::LeastLoaded`]. Requires
    /// [`crate::engine::ServeConfig::prefix_cache`] on the workers to
    /// see nonzero depths.
    PrefixAffine,
}

impl RoutePolicy {
    /// Short policy name (bench-row key).
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::JoinShortestQueue => "jsq",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::Pinned(_) => "pinned",
            RoutePolicy::PrefixAffine => "prefix-affine",
        }
    }
}

/// One worker's route-time load probes, snapshotted together so the
/// lockstep and threaded drives feed the routing policy the same
/// values through the same code path. `prefix_depth` is probed against
/// the specific request's prompt being routed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteProbes {
    /// [`ServeEngine::ready_depth`] — queued plus active requests.
    pub ready_depth: u64,
    /// [`ServeEngine::outstanding_cost`] — priced in-flight work.
    pub outstanding_cost: u64,
    /// [`ServeEngine::prefix_match_depth`] for the request's prompt.
    pub prefix_depth: u64,
}

/// The routing decision core, shared verbatim by the lockstep
/// [`Dispatcher`] and the threaded
/// [`crate::threaded::ThreadedDispatcher`] so their picks (and
/// [`EventKind::Routed`] probe payloads) cannot diverge: the drives
/// differ only in *how* the probe snapshot is gathered (direct engine
/// reads vs a channel round-trip).
#[derive(Debug, Clone)]
pub(crate) struct Router {
    route: RoutePolicy,
    /// Next cyclic pick for [`RoutePolicy::RoundRobin`].
    rr_next: usize,
}

impl Router {
    pub(crate) fn new(route: RoutePolicy) -> Self {
        Router { route, rr_next: 0 }
    }

    /// Short policy name (the `Routed` event payload key).
    pub(crate) fn policy_name(&self) -> &'static str {
        self.route.name()
    }

    /// Whether the policy reads load probes at route time. Probe-less
    /// policies skip the snapshot — and, in the threaded drive, the
    /// fleet-wide probe round-trip that gathers it.
    pub(crate) fn needs_probes(&self) -> bool {
        matches!(
            self.route,
            RoutePolicy::JoinShortestQueue | RoutePolicy::LeastLoaded | RoutePolicy::PrefixAffine
        )
    }

    /// Picks the worker for `req` among the live workers (`alive` is
    /// one flag per worker; dead workers — crashed and not yet
    /// restarted — are masked out of every policy) from the probe
    /// snapshot (`probes` may be empty when [`Self::needs_probes`] is
    /// false); also returns the per-worker probe values the decision
    /// was based on (empty for probe-less policies), for the routing
    /// trace event. With every worker alive, each policy's choice is
    /// identical to its historical unmasked behavior.
    ///
    /// # Panics
    ///
    /// Panics if no worker is alive — callers (the fault drive) defer
    /// submissions under fleet-wide backpressure instead of routing.
    pub(crate) fn pick(
        &mut self,
        req: &Request,
        alive: &[bool],
        probes: &[RouteProbes],
    ) -> (usize, Vec<u64>) {
        let n = alive.len();
        assert!(
            alive.iter().any(|&a| a),
            "routing request {} with no live workers",
            req.id
        );
        match &self.route {
            RoutePolicy::RoundRobin => {
                // Advance cyclically but skip dead workers; the cursor
                // lands one past the pick, so the cycle over live
                // workers is preserved (and is the historical cycle
                // when all are alive).
                let mut w = self.rr_next % n;
                while !alive[w] {
                    w = (w + 1) % n;
                }
                self.rr_next = (w + 1) % n;
                (w, Vec::new())
            }
            RoutePolicy::JoinShortestQueue => {
                let vals: Vec<u64> = probes.iter().map(|p| p.ready_depth).collect();
                (argmin_alive(vals.iter().copied(), alive), vals)
            }
            RoutePolicy::LeastLoaded => {
                let vals: Vec<u64> = probes.iter().map(|p| p.outstanding_cost).collect();
                (argmin_alive(vals.iter().copied(), alive), vals)
            }
            RoutePolicy::Pinned(assignment) => {
                let w = assignment
                    .iter()
                    .find(|&&(id, _)| id == req.id)
                    .map(|&(_, w)| w)
                    .unwrap_or_else(|| panic!("pinned route has no worker for request {}", req.id));
                assert!(
                    w < n,
                    "pinned route sends request {} to worker {w} of {n}",
                    req.id
                );
                // A pinned target that is dead (its recorded worker
                // crashed) falls back to the lowest live index, so
                // replays of fault-free assignments against a faulted
                // fleet still route deterministically.
                let w = if alive[w] {
                    w
                } else {
                    alive.iter().position(|&a| a).expect("checked above")
                };
                (w, Vec::new())
            }
            RoutePolicy::PrefixAffine => {
                // Argmax match depth among live workers; tie-break min
                // outstanding cost, then lowest index (first strict
                // improvement wins). Dead workers still contribute
                // their probe value to the trace payload.
                let mut vals = Vec::with_capacity(n);
                let mut best: Option<(u64, u64, usize)> = None;
                for (i, p) in probes.iter().enumerate() {
                    vals.push(p.prefix_depth);
                    if !alive[i] {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((depth, cost, _)) => {
                            p.prefix_depth > depth
                                || (p.prefix_depth == depth && p.outstanding_cost < cost)
                        }
                    };
                    if better {
                        best = Some((p.prefix_depth, p.outstanding_cost, i));
                    }
                }
                (best.expect("checked above").2, vals)
            }
        }
    }
}

/// Dispatcher knobs: fleet size and routing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchConfig {
    /// Number of independent workers (engines); clamped to ≥ 1.
    pub workers: usize,
    /// The routing policy.
    pub route: RoutePolicy,
}

impl DispatchConfig {
    /// `workers` workers under `route`.
    pub fn new(workers: usize, route: RoutePolicy) -> Self {
        DispatchConfig {
            workers: workers.max(1),
            route,
        }
    }
}

/// The result of a dispatched serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DispatchReport {
    /// All finished requests across the fleet, sorted by id.
    pub completions: Vec<Completion>,
    /// All requests rejected by (per-worker) load shedding, sorted by
    /// id.
    pub shed: Vec<ShedRequest>,
    /// Fleet-merged counters ([`ServeStats::merge`]: sums for additive
    /// counters, per-worker maxima for schedule/high-water ones).
    pub stats: ServeStats,
    /// Each worker's own counters, by worker index.
    pub per_worker: Vec<ServeStats>,
    /// The realized routing: `(request id, worker index)` sorted by id.
    /// Feed it back through [`RoutePolicy::Pinned`] to replay the run.
    pub assignments: Vec<(u64, usize)>,
}

impl DispatchReport {
    /// The worker a request was routed to, if it was received.
    pub fn worker_of(&self, id: u64) -> Option<usize> {
        self.assignments
            .binary_search_by_key(&id, |&(rid, _)| rid)
            .ok()
            .map(|i| self.assignments[i].1)
    }

    /// Total generated tokens across all completions.
    pub fn total_tokens(&self) -> usize {
        self.completions.iter().map(|c| c.output.tokens.len()).sum()
    }

    /// Tick-space equality with another report: completions compared on
    /// every field except the wall-clock seconds (which depend on real
    /// elapsed time, not the schedule), plus shed, merged and
    /// per-worker stats, and assignments. This is the parity predicate
    /// the threaded drive ([`crate::threaded::ThreadedDispatcher`]) is
    /// held to against the lockstep oracle.
    pub fn same_schedule(&self, other: &DispatchReport) -> bool {
        self.completions.len() == other.completions.len()
            && self
                .completions
                .iter()
                .zip(&other.completions)
                .all(|(a, b)| a.same_schedule(b))
            && self.shed == other.shed
            && self.stats == other.stats
            && self.per_worker == other.per_worker
            && self.assignments == other.assignments
    }
}

/// The streaming dispatcher: N independent [`ServeEngine`] workers plus
/// a routing policy. See the module docs for the drive loop and the
/// determinism story.
///
/// Drive it through [`crate::FleetRuntime`] (with
/// [`crate::Backend::Lockstep`]) for the unified batch/paced/streaming
/// API plus deterministic fault injection; the `run*` methods here
/// remain as thin compatibility wrappers over the same generic drive
/// loops.
pub struct Dispatcher<'m> {
    /// Construction inputs, retained so a crashed worker's replacement
    /// engine can be rebuilt identically (minus warm stems — crash
    /// recovery is cold-cache).
    model: &'m MlpLm,
    cfg: ServeConfig,
    draft: Option<&'m dyn LanguageModel>,
    grammar: Option<&'m verispec_grammar::GrammarOracle>,
    policy: Option<&'m dyn SpecPolicy>,
    workers: Vec<ServeEngine<'m>>,
    router: Router,
    /// Per-worker liveness under fault injection (all `true` without
    /// faults); dead workers are masked out of routing.
    alive: Vec<bool>,
    /// Report segments banked by crashed predecessor engines, merged
    /// with the final engine's report per worker at the end of the run.
    dead_reports: Vec<Vec<ServeReport>>,
    /// Fleet-level (coordinator) counters: crashes, restarts,
    /// migrations, backpressure, fleet-level sheds.
    fleet_stats: ServeStats,
    /// Requests shed at the fleet level (deferred under fleet-wide
    /// backpressure with no restart coming).
    fleet_shed: Vec<ShedRequest>,
    /// Realized `(request id, worker)` routing, in receipt order.
    assignments: Vec<(u64, usize)>,
    /// Structured-event sink shared by the dispatcher (routing events)
    /// and every worker (lifecycle events); no-op by default.
    sink: &'m dyn TraceSink,
}

impl<'m> Dispatcher<'m> {
    /// A fleet of `dcfg.workers` fused engines over the shared model,
    /// each configured with its own copy of `cfg` (own session pool,
    /// queue, and clock).
    pub fn new(model: &'m MlpLm, cfg: ServeConfig, dcfg: DispatchConfig) -> Self {
        let n = dcfg.workers.max(1);
        let mut workers: Vec<ServeEngine<'m>> = (0..n)
            .map(|_| ServeEngine::new(model, cfg.clone()))
            .collect();
        for (i, w) in workers.iter_mut().enumerate() {
            w.set_worker(i as u32);
        }
        Dispatcher {
            model,
            cfg,
            draft: None,
            grammar: None,
            policy: None,
            workers,
            router: Router::new(dcfg.route),
            alive: vec![true; n],
            dead_reports: vec![Vec::new(); n],
            fleet_stats: ServeStats::default(),
            fleet_shed: Vec::new(),
            assignments: Vec::new(),
            sink: &NOOP,
        }
    }

    /// Attaches a structured-event sink to the dispatcher and every
    /// worker: routing decisions ([`verispec_trace::EventKind::Routed`],
    /// stamped at the fleet clock with the probe values that justified
    /// the choice) interleave with each worker's lifecycle events in
    /// one stream. Write-only — never perturbs routing or serving.
    pub fn with_sink(mut self, sink: &'m dyn TraceSink) -> Self {
        self.sink = sink;
        for w in &mut self.workers {
            w.set_sink(sink);
        }
        self
    }

    /// Attaches the draft model to every worker (see
    /// [`ServeEngine::with_draft`]).
    pub fn with_draft(mut self, draft: &'m dyn LanguageModel) -> Self {
        self.draft = Some(draft);
        self.workers = self
            .workers
            .into_iter()
            .map(|w| w.with_draft(draft))
            .collect();
        self
    }

    /// Seeds every worker's prefix cache with a warm stem (see
    /// [`ServeEngine::warm_prefix`]) — the fleet-wide replacement for
    /// the old per-worker shared-prefix session plumbing: the trie
    /// subsumes it, and unlike the bespoke path the warmed stem is
    /// cap-charged and LRU-evictable like any organically cached
    /// prefix. Returns how many workers accepted the stem (0 when
    /// [`ServeConfig::prefix_cache`] is off).
    pub fn warm_prefix(&mut self, tokens: &[verispec_lm::TokenId]) -> usize {
        self.workers
            .iter_mut()
            .map(|w| usize::from(w.warm_prefix(tokens)))
            .sum()
    }

    /// Attaches the grammar oracle to every worker (see
    /// [`ServeEngine::with_grammar`]): grammar-tree requests prune
    /// their candidate trees to lexically-viable continuations.
    pub fn with_grammar(mut self, oracle: &'m verispec_grammar::GrammarOracle) -> Self {
        self.grammar = Some(oracle);
        self.workers = self
            .workers
            .into_iter()
            .map(|w| w.with_grammar(oracle))
            .collect();
        self
    }

    /// Replaces every worker's speculation policy (see
    /// [`ServeEngine::with_policy`]).
    pub fn with_policy(mut self, policy: &'m dyn SpecPolicy) -> Self {
        self.policy = Some(policy);
        self.workers = self
            .workers
            .into_iter()
            .map(|w| w.with_policy(policy))
            .collect();
        self
    }

    /// Number of workers in the fleet.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Picks the worker for `req` under the routing policy; also
    /// returns the per-worker probe values the decision was based on
    /// (empty for probe-less policies), for the routing trace event.
    /// The decision itself lives in the shared `Router`; this method
    /// only gathers the probe snapshot by reading the live engines
    /// directly (the threaded drive gathers the same snapshot over its
    /// worker channels).
    fn route(&mut self, req: &Request) -> (usize, Vec<u64>) {
        let probes: Vec<RouteProbes> = if self.router.needs_probes() {
            self.workers
                .iter()
                .map(|w| RouteProbes {
                    ready_depth: w.ready_depth() as u64,
                    outstanding_cost: w.outstanding_cost() as u64,
                    prefix_depth: w.prefix_match_depth(&req.prompt) as u64,
                })
                .collect()
        } else {
            Vec::new()
        };
        self.router.pick(req, &self.alive, &probes)
    }

    /// Routes and enqueues one request, returning the chosen worker
    /// (the fault drive stamps migration events with it).
    fn submit_routed(&mut self, req: Request) -> usize {
        let (w, probes) = self.route(&req);
        if self.sink.enabled() {
            // Routing events are stamped at the fleet clock — the
            // most-advanced worker's tick, the same notion of "now"
            // the paced driver routes by.
            let now = self
                .workers
                .iter()
                .map(ServeEngine::clock)
                .max()
                .unwrap_or(0);
            self.sink.record(TraceEvent {
                tick: now,
                worker: w as u32,
                request: Some(req.id),
                kind: EventKind::Routed {
                    policy: self.router.policy_name().to_string(),
                    probes,
                },
            });
        }
        self.assignments.push((req.id, w));
        self.workers[w].submit(req);
        w
    }

    /// Routes and enqueues one request.
    pub fn submit(&mut self, req: Request) {
        self.submit_routed(req);
    }

    /// A cold replacement engine for worker slot `w`, configured
    /// identically to the original (model, config, draft, grammar,
    /// policy, sink, worker id) except for warm prefix stems — crash
    /// recovery is deliberately cold-cache, matching what a restarted
    /// process would see.
    fn rebuild_worker(&self, w: usize) -> ServeEngine<'m> {
        let mut fresh = ServeEngine::new(self.model, self.cfg.clone());
        if let Some(draft) = self.draft {
            fresh = fresh.with_draft(draft);
        }
        if let Some(oracle) = self.grammar {
            fresh = fresh.with_grammar(oracle);
        }
        if let Some(policy) = self.policy {
            fresh = fresh.with_policy(policy);
        }
        fresh.set_worker(w as u32);
        fresh.set_sink(self.sink);
        fresh
    }

    /// Pulls every request currently waiting in `rx`, routing each as
    /// it is received. Returns `(received, disconnected)` like
    /// [`ServeEngine::drain_arrivals`].
    pub fn drain_arrivals(&mut self, rx: &std::sync::mpsc::Receiver<Request>) -> (usize, bool) {
        use std::sync::mpsc::TryRecvError;
        let mut received = 0usize;
        let disconnected = loop {
            match rx.try_recv() {
                Ok(req) => {
                    self.submit(req);
                    received += 1;
                }
                Err(TryRecvError::Empty) => break false,
                Err(TryRecvError::Disconnected) => break true,
            }
        };
        (received, disconnected)
    }

    /// Whether any worker still has queued or active work.
    pub fn has_work(&self) -> bool {
        self.workers.iter().any(ServeEngine::has_work)
    }

    /// Runs one lockstep round: every worker with work executes one
    /// tick of its own loop (idle workers skip; workers whose queue is
    /// all future arrivals fast-forward their own clocks, exactly as a
    /// standalone engine would). Returns `false` once the whole fleet
    /// is drained.
    pub fn tick(&mut self, cost: &GpuCostModel) -> bool {
        for w in &mut self.workers {
            w.tick(cost);
        }
        self.has_work()
    }

    fn into_report(self) -> DispatchReport {
        let mut completions = Vec::new();
        let mut shed = Vec::new();
        let mut stats = ServeStats::default();
        let mut per_worker = Vec::with_capacity(self.workers.len());
        // Each worker slot's report is the merge of every engine that
        // lived in it: crashed predecessors' banked segments plus the
        // final engine (the identity merge without faults). Fleet-level
        // counters (crashes, migrations, backpressure, fleet sheds) sit
        // in `fleet_stats` — part of the merged stats, deliberately not
        // of any per-worker entry.
        for (mut segments, worker) in self.dead_reports.into_iter().zip(self.workers) {
            segments.push(worker.into_report_parts());
            let merged = crate::runtime::merge_segments(segments);
            completions.extend(merged.completions);
            shed.extend(merged.shed);
            stats.merge(&merged.stats);
            per_worker.push(merged.stats);
        }
        stats.merge(&self.fleet_stats);
        shed.extend(self.fleet_shed);
        completions.sort_by_key(|c| c.id);
        shed.sort_by_key(|s| s.id);
        let mut assignments = self.assignments;
        assignments.sort_unstable();
        DispatchReport {
            completions,
            shed,
            stats,
            per_worker,
            assignments,
        }
    }

    /// Drives the fleet until every submitted request completes.
    pub fn run(mut self, cost: &GpuCostModel) -> DispatchReport {
        while self.tick(cost) {}
        self.into_report()
    }

    /// Drives the fleet through a *paced* open-loop run: each request
    /// is routed exactly when its arrival tick falls due on the fleet
    /// round clock, so load-aware policies see the queue state the
    /// arrival would actually see — earlier arrivals have already been
    /// admitted, stepped, and partially drained. (Feeding every
    /// request up front instead, as a channel sender may, makes all
    /// routing happen before any tick: join-shortest-queue then ties
    /// its way into plain round-robin. This driver is what the
    /// dispatch bench measures.)
    ///
    /// Requests are sorted by arrival (stable, so equal-arrival order
    /// is preserved); the whole run is deterministic, and with one
    /// worker the schedule is tick-identical to the single streaming
    /// engine fed the same requests *in arrival order* (queue order
    /// breaks ties among simultaneously-ready requests, so an
    /// unsorted upfront feed is a different schedule).
    pub fn run_paced(self, requests: Vec<Request>, cost: &GpuCostModel) -> DispatchReport {
        self.run_paced_with_faults(requests, &[], cost)
    }

    /// [`Dispatcher::run_paced`] under a deterministic fault schedule
    /// (see [`crate::runtime`] for semantics): each round fires due
    /// crash/restart events before routing due arrivals, migrating
    /// stranded requests to surviving workers by exact replay. With an
    /// empty schedule this is exactly `run_paced`. Prefer driving
    /// through [`crate::FleetRuntime`] with a [`crate::FaultPlan`].
    pub fn run_paced_with_faults(
        mut self,
        requests: Vec<Request>,
        faults: &[crate::runtime::FaultEvent],
        cost: &GpuCostModel,
    ) -> DispatchReport {
        crate::runtime::drive_paced(&mut self, requests, faults, cost);
        // The drive returns once nothing external remains; the rest is
        // a pure lockstep drain.
        while self.tick(cost) {}
        self.into_report()
    }

    /// Drives the fleet against a live arrival channel, mirroring
    /// [`ServeEngine::run_streaming`]: each round drains (and routes)
    /// newly arrived requests, then runs one lockstep tick; when idle
    /// with the stream open it blocks for the next arrival. With one
    /// worker this is tick-identical to the single-engine streaming
    /// loop. (A thin wrapper over the generic streaming drive shared
    /// with the threaded backend — see [`crate::FleetRuntime`].)
    pub fn run_streaming(
        mut self,
        arrivals: std::sync::mpsc::Receiver<Request>,
        cost: &GpuCostModel,
    ) -> DispatchReport {
        crate::runtime::drive_streaming(&mut self, arrivals, cost);
        self.into_report()
    }
}

impl crate::runtime::FleetBackend for Dispatcher<'_> {
    fn now(&self) -> u64 {
        self.workers
            .iter()
            .map(ServeEngine::clock)
            .max()
            .unwrap_or(0)
    }

    fn fleet_has_work(&self) -> bool {
        self.has_work()
    }

    fn alive(&self) -> &[bool] {
        &self.alive
    }

    fn route_submit(&mut self, req: Request) -> usize {
        self.submit_routed(req)
    }

    fn tick_round(&mut self, cost: &GpuCostModel) {
        self.tick(cost);
    }

    fn crash_worker(&mut self, w: usize, at: u64) -> Vec<(Request, usize)> {
        let mut fresh = self.rebuild_worker(w);
        fresh.advance_clock(at);
        let old = std::mem::replace(&mut self.workers[w], fresh);
        self.alive[w] = false;
        let (report, stranded) = old.crash();
        self.dead_reports[w].push(report);
        stranded
    }

    fn restart_worker(&mut self, w: usize, at: u64) {
        self.alive[w] = true;
        self.workers[w].advance_clock(at);
    }

    fn record_fleet_event(&mut self, ev: TraceEvent) {
        self.fleet_stats.apply_event(&ev);
        if self.sink.enabled() {
            self.sink.record(ev);
        }
    }

    fn shed_fleet(&mut self, req: Request, tick: u64) {
        self.fleet_shed.push(ShedRequest {
            id: req.id,
            arrival: req.arrival,
            deadline: req.deadline,
            tick,
        });
    }
}

/// Index of the smallest value among live workers (first wins ties —
/// the lowest live worker index, so routing is deterministic; with all
/// workers alive this is the plain argmin).
fn argmin_alive(values: impl Iterator<Item = u64>, alive: &[bool]) -> usize {
    let mut best: Option<(u64, usize)> = None;
    for (i, v) in values.enumerate() {
        if !alive[i] {
            continue;
        }
        let better = match best {
            None => true,
            Some((bv, _)) => v < bv,
        };
        if better {
            best = Some((v, i));
        }
    }
    best.expect("no live workers to route among").1
}

/// Serves `requests` through a dispatcher fleet (closed-loop batch
/// submission: everything is routed up front, in request order).
pub fn dispatch_all(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    dcfg: &DispatchConfig,
    cost: &GpuCostModel,
) -> DispatchReport {
    let mut d = Dispatcher::new(model, cfg.clone(), dcfg.clone());
    if let Some(dr) = draft {
        d = d.with_draft(dr);
    }
    for req in requests {
        d.submit(req);
    }
    d.run(cost)
}

/// The open-loop sibling of [`dispatch_all`]: routes and serves
/// requests as they arrive on `arrivals` (see
/// [`Dispatcher::run_streaming`]). Shared prompt stems no longer need
/// a dedicated parameter here — enable
/// [`ServeConfig::prefix_cache`] and (optionally) pre-warm stems via
/// [`Dispatcher::warm_prefix`]; the trie subsumes the old
/// shared-prefix-session plumbing.
pub fn dispatch_streaming(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    arrivals: std::sync::mpsc::Receiver<Request>,
    cfg: &ServeConfig,
    dcfg: &DispatchConfig,
    cost: &GpuCostModel,
) -> DispatchReport {
    let mut d = Dispatcher::new(model, cfg.clone(), dcfg.clone());
    if let Some(dr) = draft {
        d = d.with_draft(dr);
    }
    d.run_streaming(arrivals, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_core::DecodeConfig;
    use verispec_lm::{MlpLmConfig, TokenId};

    fn model() -> MlpLm {
        MlpLm::new(MlpLmConfig {
            vocab: 14,
            d_emb: 6,
            d_hidden: 12,
            context: 4,
            n_heads: 3,
            seed: 33,
        })
    }

    fn ntp_request(id: u64, budget: usize) -> Request {
        Request::new(
            id,
            vec![1 + (id % 4) as TokenId, 2],
            EngineChoice::Ntp,
            DecodeConfig {
                max_tokens: budget,
                seed: id,
                ..Default::default()
            },
        )
    }

    fn tree_request(id: u64, budget: usize) -> Request {
        Request::new(
            id,
            vec![1 + (id % 4) as TokenId, 2],
            EngineChoice::SyntaxAligned {
                tree: Some(vec![2, 2]),
            },
            DecodeConfig {
                max_tokens: budget,
                seed: id,
                ..Default::default()
            },
        )
    }

    use crate::request::EngineChoice;

    #[test]
    fn round_robin_cycles_through_workers() {
        let m = model();
        let mut d = Dispatcher::new(
            &m,
            ServeConfig::concurrency(2),
            DispatchConfig::new(3, RoutePolicy::RoundRobin),
        );
        for id in 0..6 {
            d.submit(ntp_request(id, 4));
        }
        assert_eq!(
            d.assignments,
            vec![(0, 0), (1, 1), (2, 2), (3, 0), (4, 1), (5, 2)]
        );
    }

    #[test]
    fn jsq_joins_the_shallowest_worker() {
        let m = model();
        let mut d = Dispatcher::new(
            &m,
            ServeConfig::concurrency(2),
            DispatchConfig::new(2, RoutePolicy::JoinShortestQueue),
        );
        // Empty fleet: ties break to the lowest index.
        d.submit(ntp_request(0, 4)); // depths (0,0) -> worker 0
        d.submit(ntp_request(1, 4)); // depths (1,0) -> worker 1
        d.submit(ntp_request(2, 4)); // depths (1,1) -> worker 0
        assert_eq!(d.assignments, vec![(0, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn probes_expose_depth_vs_cost() {
        let m = model();
        let mut heavy = ServeEngine::new(&m, ServeConfig::concurrency(2));
        heavy.submit(tree_request(0, 10)); // one wide, long request
        let mut light = ServeEngine::new(&m, ServeConfig::concurrency(2));
        light.submit(ntp_request(1, 2)); // two cheap shorties
        light.submit(ntp_request(2, 2));
        assert!(heavy.ready_depth() < light.ready_depth());
        assert!(
            heavy.outstanding_cost() > light.outstanding_cost(),
            "a tree[2,2] x 10-token budget ({}) must outweigh two 2-token NTPs ({})",
            heavy.outstanding_cost(),
            light.outstanding_cost()
        );
        // The tree costs 1 + 4 paths x 3 levels = 13 per step.
        assert_eq!(heavy.outstanding_cost(), 10 * 13);
        assert_eq!(light.outstanding_cost(), 2 + 2);
    }

    #[test]
    fn least_loaded_routes_by_cost_where_jsq_routes_by_count() {
        let m = model();
        let arrivals = || {
            vec![
                tree_request(0, 12), // heavy: dominates one worker's cost
                ntp_request(1, 3),
                ntp_request(2, 3),
                ntp_request(3, 3),
            ]
        };
        let route_with = |route: RoutePolicy| -> Vec<(u64, usize)> {
            let mut d = Dispatcher::new(
                &m,
                ServeConfig::concurrency(2),
                DispatchConfig::new(2, route),
            );
            for r in arrivals() {
                d.submit(r);
            }
            d.assignments
        };
        // JSQ counts requests: after (0->w0, 1->w1) the depths tie, so
        // request 2 joins worker 0 right next to the heavy tree.
        assert_eq!(
            route_with(RoutePolicy::JoinShortestQueue),
            vec![(0, 0), (1, 1), (2, 0), (3, 1)]
        );
        // Least-loaded prices the tree: every shorty avoids worker 0.
        assert_eq!(
            route_with(RoutePolicy::LeastLoaded),
            vec![(0, 0), (1, 1), (2, 1), (3, 1)]
        );
    }

    #[test]
    fn report_lookup_and_merge_are_consistent() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let report = dispatch_all(
            &m,
            None,
            (0..5).map(|id| ntp_request(id, 4)).collect(),
            &ServeConfig::concurrency(2),
            &DispatchConfig::new(2, RoutePolicy::RoundRobin),
            &cost,
        );
        assert_eq!(report.completions.len(), 5);
        assert_eq!(report.per_worker.len(), 2);
        assert_eq!(report.worker_of(1), Some(1));
        assert_eq!(report.worker_of(99), None);
        let mut merged = ServeStats::default();
        for s in &report.per_worker {
            merged.merge(s);
        }
        assert_eq!(merged, report.stats);
        assert_eq!(report.total_tokens(), report.stats.served_tokens);
    }

    #[test]
    fn prefix_affine_follows_the_warm_stem() {
        let m = model();
        let cfg = ServeConfig {
            prefix_cache: true,
            ..ServeConfig::concurrency(2)
        };
        let mut d = Dispatcher::new(&m, cfg, DispatchConfig::new(3, RoutePolicy::PrefixAffine));
        // Warm one stem on every worker, then serve a request through
        // worker-targeted submission so only that worker's trie grows.
        let stem: Vec<TokenId> = vec![1, 2, 3];
        assert_eq!(d.warm_prefix(&stem), 3);
        let stem_req = |id: u64, prompt: Vec<TokenId>| {
            Request::new(
                id,
                prompt,
                EngineChoice::Ntp,
                DecodeConfig {
                    max_tokens: 4,
                    seed: id,
                    ..Default::default()
                },
            )
        };
        // All workers tie at depth 3 → least-loaded tie-break → worker
        // 0 gets the first stem-sharing request; once admitted (one
        // tick), its full prompt is cached there, so a deeper extension
        // of the same stem follows it to worker 0 even though worker 0
        // is now the busiest.
        let cost = GpuCostModel::codellama_like();
        d.submit(stem_req(0, vec![1, 2, 3, 4, 5]));
        d.tick(&cost);
        d.submit(stem_req(1, vec![1, 2, 3, 4, 5, 6]));
        assert_eq!(d.assignments, vec![(0, 0), (1, 0)]);
        // An unrelated prompt sees depth 0 everywhere and falls back to
        // the least-loaded worker instead of piling on worker 0.
        d.submit(stem_req(2, vec![9, 9, 9]));
        assert_eq!(d.assignments[2], (2, 1));
    }

    #[test]
    #[should_panic(expected = "pinned route has no worker")]
    fn pinned_route_rejects_unknown_requests() {
        let m = model();
        let mut d = Dispatcher::new(
            &m,
            ServeConfig::concurrency(1),
            DispatchConfig::new(2, RoutePolicy::Pinned(vec![(7, 1)])),
        );
        d.submit(ntp_request(0, 2));
    }
}
