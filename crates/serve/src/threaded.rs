//! The threaded dispatch runtime: one OS thread per worker, driven
//! over an mpsc command/reply protocol, bit-identical to the lockstep
//! [`crate::dispatch::Dispatcher`] oracle.
//!
//! # Architecture
//!
//! ```text
//!   coordinator (caller thread)            worker thread i (×N)
//!   ───────────────────────────            ────────────────────
//!   ThreadedDispatcher::run_*              worker_loop:
//!     Router (shared with lockstep)          ServeEngine built *in*
//!     clock/has_work mirrors                 the thread (own session
//!         │                                  pool, queue, clock, and
//!         │  WorkerCmd ─────────────────►    a private EventLog sink)
//!         │   Submit(Request)                  submit / tick / probe
//!         │   Tick | Probe(prompt) | Drain     against the local
//!         │                                    engine only
//!         ◄───────────────── WorkerReply │
//!             Ticked{clock, has_work}    │
//!             Probed(RouteProbes)        │
//!             Finished{report, events}   ┘
//! ```
//!
//! Each worker owns a private [`ServeEngine`] constructed inside its
//! thread (engines are deliberately not `Send`: they hold live decode
//! sessions), plus a private [`EventLog`]. Routing decisions and
//! newly-due arrivals flow down the command channel; per-tick results,
//! probe snapshots, and the final report + event stream flow back up.
//!
//! # Barrier placement
//!
//! The lockstep oracle's semantics couple workers in exactly two
//! places, and those are the only synchronization points here:
//!
//! 1. **Route-time probe reads.** Load-aware policies (jsq /
//!    least-loaded / prefix-affine) read every worker's probes at the
//!    instant a request is routed. The coordinator performs a
//!    synchronous `Probe` round-trip to all workers; per-worker mpsc
//!    FIFO ordering guarantees the reply reflects every earlier
//!    `Submit`, and workers are quiescent between tick rounds, so the
//!    snapshot equals the lockstep drive's direct engine reads.
//!    Probe-less policies (rr / pinned) skip the round-trip entirely.
//! 2. **The paced round boundary.** The paced drive routes arrivals
//!    by the fleet's most-advanced clock, so while arrivals are still
//!    pending, each round sends `Tick` to every busy worker and waits
//!    for all `Ticked` replies — one barrier per round, with the ticks
//!    themselves running concurrently. Idle workers are skipped: an
//!    empty engine's tick is a proven no-op.
//!
//! Once the last arrival is routed (and for the whole batch drive,
//! where everything is routed up front), nothing the coordinator could
//! send can affect any worker — so `Drain` releases every worker to
//! free-run its remaining ticks with **zero barriers**.
//!
//! # Determinism argument
//!
//! Workers share nothing but read-only state (model, draft, grammar
//! oracle, policy — all `Sync`), so a worker's tick sequence is a pure
//! function of the command sequence it receives. The coordinator sends
//! each worker exactly the per-worker subsequence of submit/tick calls
//! the lockstep drive would make: routing uses the same `Router`
//! core over the same probe values, the clock/`has_work` mirrors are
//! exact (a worker's state changes only via its own commands, and
//! every state-changing command is acknowledged before the mirror is
//! read), and the drain free-run equals the lockstep tail rounds
//! because those contain no further submissions. Hence reports are
//! tick-for-tick and token-for-token identical, and per-worker event
//! streams are event-for-event identical; only the *interleaving* of
//! the merged stream differs, which
//! [`verispec_trace::canonicalize_fleet_events`] normalizes away.
//! `tests/proptest_dispatch_threaded.rs` pins all of this across
//! worker counts, route policies, both drives, and eviction churn.

use crate::dispatch::{DispatchConfig, DispatchReport, RouteProbes, Router};
use crate::engine::{ServeConfig, ServeEngine, ServeReport, ServeStats};
use crate::request::Request;
use std::sync::mpsc;
use verispec_core::SpecPolicy;
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, TokenId};
use verispec_trace::{EventKind, EventLog, TraceEvent};

/// A command the coordinator sends down a worker's channel. Per-worker
/// delivery is FIFO (mpsc), which is what makes probe snapshots and
/// submit ordering deterministic.
#[derive(Debug)]
pub enum WorkerCmd {
    /// Enqueue a routed request on the worker's engine.
    Submit(Box<Request>),
    /// Run one scheduler tick; the worker answers with
    /// [`WorkerReply::Ticked`].
    Tick,
    /// Snapshot the worker's route-time probes against this prompt;
    /// the worker answers with [`WorkerReply::Probed`].
    Probe(Vec<TokenId>),
    /// Fault injection: crash the worker's engine at tick `at`. The
    /// worker banks the dead engine's finished work as a report
    /// segment, replaces it with a cold engine (no warm stems — crash
    /// recovery is cold-cache) whose clock starts at `at`, and answers
    /// with [`WorkerReply::Crashed`] carrying the stranded requests
    /// for the coordinator to migrate.
    Crash {
        /// The crash tick (the fault event's tick).
        at: u64,
    },
    /// Fault injection: revive the worker at tick `at` (advances the
    /// replacement engine's clock; no reply — the coordinator mirrors
    /// the effect deterministically).
    Restart {
        /// The restart tick.
        at: u64,
    },
    /// No further commands follow: free-run every remaining tick
    /// without barriers, then answer with [`WorkerReply::Finished`].
    Drain,
}

/// A worker's reply on its result channel.
#[derive(Debug)]
pub enum WorkerReply {
    /// One tick ran; the engine's clock (including idle fast-forward
    /// jumps) and whether work remains.
    Ticked {
        /// The engine's scheduler clock after the tick.
        clock: u64,
        /// Whether any request is still queued or active.
        has_work: bool,
    },
    /// Route-time probe snapshot for a [`WorkerCmd::Probe`].
    Probed(RouteProbes),
    /// The worker's engine crashed ([`WorkerCmd::Crash`]): every
    /// in-flight and queued request it was holding, as
    /// `(original request, tokens already generated)` pairs sorted by
    /// id, for migration by exact replay.
    Crashed {
        /// The stranded requests.
        stranded: Vec<(Request, usize)>,
    },
    /// The worker drained: its final report (all crash segments
    /// merged) and its private event stream, in emission order.
    Finished {
        /// The worker's own completions, shed, and stats (boxed to
        /// keep the reply enum small next to `Ticked`/`Probed`).
        report: Box<ServeReport>,
        /// Every event the worker's engine emitted (empty untraced).
        events: Vec<TraceEvent>,
    },
}

/// The coordinator's endpoint for one worker thread: the command
/// sender, the reply receiver, and exact mirrors of the worker's clock
/// and work state (exact because a worker's state only changes through
/// its own command channel, and every state-changing command is
/// acknowledged or inferable — a `Submit` always creates work).
pub struct WorkerHandle {
    cmd: mpsc::Sender<WorkerCmd>,
    reply: mpsc::Receiver<WorkerReply>,
    /// Mirror of the worker engine's scheduler clock.
    clock: u64,
    /// Mirror of the worker engine's `has_work()`.
    has_work: bool,
}

impl WorkerHandle {
    fn send(&self, cmd: WorkerCmd) {
        self.cmd.send(cmd).expect("worker thread hung up");
    }

    fn recv(&self) -> WorkerReply {
        self.reply.recv().expect("worker thread hung up")
    }
}

/// The result of a threaded fleet run: the merged report plus the
/// merged event stream in canonical fleet order (routing events in
/// emission order, then each worker's events grouped by worker id —
/// the fixed point of [`verispec_trace::canonicalize_fleet_events`]).
/// `events` is empty unless [`ThreadedDispatcher::with_tracing`] was
/// requested.
#[derive(Debug)]
pub struct ThreadedRun {
    /// Fleet-merged report, field-for-field the shape the lockstep
    /// drives produce (completions/shed sorted by id, stats merged in
    /// worker order, assignments sorted).
    pub report: DispatchReport,
    /// Canonically merged fleet event stream.
    pub events: Vec<TraceEvent>,
}

/// Builder for a threaded fleet run. Mirrors the lockstep
/// [`crate::Dispatcher`]'s configuration surface, but defers engine
/// construction to the worker threads themselves (a [`ServeEngine`]
/// is not `Send`; each one is born, driven, and consumed entirely
/// inside its own thread).
pub struct ThreadedDispatcher<'m> {
    model: &'m MlpLm,
    cfg: ServeConfig,
    dcfg: DispatchConfig,
    draft: Option<&'m (dyn LanguageModel + Sync)>,
    grammar: Option<&'m GrammarOracle>,
    policy: Option<&'m dyn SpecPolicy>,
    warm: Vec<Vec<TokenId>>,
    traced: bool,
}

impl<'m> ThreadedDispatcher<'m> {
    /// A fleet spec of `dcfg.workers` engines over the shared model,
    /// each to be configured with its own copy of `cfg`.
    pub fn new(model: &'m MlpLm, cfg: ServeConfig, dcfg: DispatchConfig) -> Self {
        ThreadedDispatcher {
            model,
            cfg,
            dcfg,
            draft: None,
            grammar: None,
            policy: None,
            warm: Vec::new(),
            traced: false,
        }
    }

    /// Attaches the draft model to every worker (see
    /// [`ServeEngine::with_draft`]). `Sync` is required because the
    /// workers share it across threads.
    pub fn with_draft(mut self, draft: &'m (dyn LanguageModel + Sync)) -> Self {
        self.draft = Some(draft);
        self
    }

    /// Attaches the grammar oracle to every worker (see
    /// [`ServeEngine::with_grammar`]).
    pub fn with_grammar(mut self, oracle: &'m GrammarOracle) -> Self {
        self.grammar = Some(oracle);
        self
    }

    /// Replaces every worker's speculation policy (see
    /// [`ServeEngine::with_policy`]; [`SpecPolicy`] is `Sync` by
    /// definition).
    pub fn with_policy(mut self, policy: &'m dyn SpecPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Seeds every worker's prefix cache with a warm stem at startup
    /// (see [`ServeEngine::warm_prefix`]), matching the lockstep
    /// drive's pre-run [`crate::Dispatcher::warm_prefix`] call. May be
    /// called repeatedly; stems are applied in order.
    pub fn warm_prefix(mut self, tokens: &[TokenId]) -> Self {
        self.warm.push(tokens.to_vec());
        self
    }

    /// Collects structured events: each worker traces into its own
    /// private [`EventLog`], the coordinator records routing events,
    /// and [`ThreadedRun::events`] carries the canonical merge.
    pub fn with_tracing(mut self) -> Self {
        self.traced = true;
        self
    }

    /// The threaded analogue of the lockstep batch drive
    /// ([`crate::dispatch::dispatch_all`] /
    /// [`crate::Dispatcher::run`]): every request is routed up front
    /// in the given order, then the whole fleet free-runs to
    /// completion with zero barriers.
    pub fn run_threaded(self, requests: Vec<Request>, cost: &GpuCostModel) -> ThreadedRun {
        self.drive(ThreadedInput::Batch(requests), cost)
    }

    /// The threaded analogue of [`crate::Dispatcher::run_paced`]:
    /// requests are routed exactly when their arrival ticks fall due
    /// on the fleet round clock (one tick barrier per round while
    /// arrivals pend), then the fleet free-runs barrier-free once the
    /// last arrival is routed. (Both backends share the generic paced
    /// drive in [`crate::runtime`].)
    pub fn run_paced_threaded(self, requests: Vec<Request>, cost: &GpuCostModel) -> ThreadedRun {
        self.drive(ThreadedInput::Paced(requests, Vec::new()), cost)
    }

    /// [`Self::run_paced_threaded`] under a deterministic fault
    /// schedule — the threaded twin of
    /// [`crate::Dispatcher::run_paced_with_faults`], running the exact
    /// same generic fault drive, so fault-injected runs are
    /// tick-identical across backends. Prefer driving through
    /// [`crate::FleetRuntime`] with a [`crate::FaultPlan`].
    pub fn run_paced_faulted(
        self,
        requests: Vec<Request>,
        faults: &[crate::runtime::FaultEvent],
        cost: &GpuCostModel,
    ) -> ThreadedRun {
        self.drive(ThreadedInput::Paced(requests, faults.to_vec()), cost)
    }

    /// The threaded analogue of [`crate::Dispatcher::run_streaming`]:
    /// routes requests as they are received on a live channel,
    /// blocking for the next arrival when the fleet is idle with the
    /// stream open (one tick barrier per round — a live channel never
    /// reaches the "nothing can change" free-run state until it
    /// closes).
    pub fn run_streaming_threaded(
        self,
        arrivals: mpsc::Receiver<Request>,
        cost: &GpuCostModel,
    ) -> ThreadedRun {
        self.drive(ThreadedInput::Streaming(arrivals), cost)
    }

    fn drive(self, input: ThreadedInput, cost: &GpuCostModel) -> ThreadedRun {
        let n = self.dcfg.workers.max(1);
        let traced = self.traced;
        let (model, cfg, warm) = (self.model, &self.cfg, &self.warm);
        let (draft, grammar, policy) = (self.draft, self.grammar, self.policy);
        std::thread::scope(|s| {
            let mut fleet = Fleet {
                handles: Vec::with_capacity(n),
                router: Router::new(self.dcfg.route.clone()),
                alive: vec![true; n],
                traced,
                routing_events: Vec::new(),
                late_events: Vec::new(),
                assignments: Vec::new(),
                fleet_stats: ServeStats::default(),
                fleet_shed: Vec::new(),
            };
            for worker in 0..n {
                let (cmd_tx, cmd_rx) = mpsc::channel::<WorkerCmd>();
                let (reply_tx, reply_rx) = mpsc::channel::<WorkerReply>();
                let (cfg, warm) = (cfg.clone(), warm.clone());
                s.spawn(move || {
                    worker_loop(
                        model,
                        cfg,
                        draft,
                        grammar,
                        policy,
                        warm,
                        traced,
                        worker as u32,
                        cost,
                        cmd_rx,
                        reply_tx,
                    )
                });
                fleet.handles.push(WorkerHandle {
                    cmd: cmd_tx,
                    reply: reply_rx,
                    clock: 0,
                    has_work: false,
                });
            }
            match input {
                ThreadedInput::Batch(requests) => {
                    for req in requests {
                        fleet.submit(req);
                    }
                }
                ThreadedInput::Paced(requests, faults) => {
                    crate::runtime::drive_paced(&mut fleet, requests, &faults, cost);
                }
                ThreadedInput::Streaming(arrivals) => {
                    crate::runtime::drive_streaming(&mut fleet, arrivals, cost);
                }
            }
            fleet.finish()
        })
    }
}

/// How requests reach a threaded drive (the backend-internal twin of
/// [`crate::Drive`]).
enum ThreadedInput {
    Batch(Vec<Request>),
    Paced(Vec<Request>, Vec<crate::runtime::FaultEvent>),
    Streaming(mpsc::Receiver<Request>),
}

/// Coordinator-side fleet state: worker handles plus the routing core
/// and the routing event/assignment records the lockstep drive keeps
/// on the `Dispatcher` itself, and the fault-layer bookkeeping
/// (liveness, fleet-level stats and sheds).
struct Fleet {
    handles: Vec<WorkerHandle>,
    router: Router,
    /// Per-worker liveness under fault injection (all `true` without
    /// faults); dead workers are masked out of routing.
    alive: Vec<bool>,
    traced: bool,
    routing_events: Vec<TraceEvent>,
    /// Coordinator-recorded events of *worker-stream* kind (fleet-level
    /// sheds): in the lockstep oracle's shared log these are emitted
    /// after the owning worker's engine events, so the merge must slot
    /// them after the worker streams, not with the routing events.
    late_events: Vec<TraceEvent>,
    assignments: Vec<(u64, usize)>,
    /// Fleet-level (coordinator) counters: crashes, restarts,
    /// migrations, backpressure, fleet-level sheds.
    fleet_stats: ServeStats,
    /// Requests shed at the fleet level under unrecovered backpressure.
    fleet_shed: Vec<crate::engine::ShedRequest>,
}

impl Fleet {
    /// The fleet clock: its most-advanced worker's mirror.
    fn now(&self) -> u64 {
        self.handles.iter().map(|h| h.clock).max().unwrap_or(0)
    }

    fn any_busy(&self) -> bool {
        self.handles.iter().any(|h| h.has_work)
    }

    /// The route-time probe barrier: a synchronous round-trip to every
    /// worker. Workers are quiescent between rounds and mpsc delivery
    /// is FIFO, so each reply reflects exactly the submits that the
    /// lockstep drive's direct reads would see.
    fn probe_round(&self, prompt: &[TokenId]) -> Vec<RouteProbes> {
        for h in &self.handles {
            h.send(WorkerCmd::Probe(prompt.to_vec()));
        }
        self.handles
            .iter()
            .map(|h| match h.recv() {
                WorkerReply::Probed(p) => p,
                other => panic!("expected Probed reply, got {other:?}"),
            })
            .collect()
    }

    fn submit(&mut self, req: Request) -> usize {
        let probes = if self.router.needs_probes() {
            self.probe_round(&req.prompt)
        } else {
            Vec::new()
        };
        let (w, probe_vals) = self.router.pick(&req, &self.alive, &probes);
        if self.traced {
            // Same stamp as the lockstep drive: the fleet clock (the
            // mirrors are exact, and submits never move clocks).
            self.routing_events.push(TraceEvent {
                tick: self.now(),
                worker: w as u32,
                request: Some(req.id),
                kind: EventKind::Routed {
                    policy: self.router.policy_name().to_string(),
                    probes: probe_vals,
                },
            });
        }
        self.assignments.push((req.id, w));
        self.handles[w].send(WorkerCmd::Submit(Box::new(req)));
        // submit() always enqueues, so the mirror flips without a
        // round-trip.
        self.handles[w].has_work = true;
        w
    }

    /// One paced round: every busy worker ticks concurrently behind a
    /// single barrier; idle workers are skipped (their tick is a
    /// no-op in the lockstep oracle too).
    fn barrier_tick_round(&mut self) {
        for h in &self.handles {
            if h.has_work {
                h.send(WorkerCmd::Tick);
            }
        }
        for h in &mut self.handles {
            if h.has_work {
                match h.recv() {
                    WorkerReply::Ticked { clock, has_work } => {
                        h.clock = clock;
                        h.has_work = has_work;
                    }
                    other => panic!("expected Ticked reply, got {other:?}"),
                }
            }
        }
    }

    /// Releases every worker to free-run, then merges reports and
    /// event streams in worker-id order — the same fold as the
    /// lockstep `Dispatcher::into_report`, producing the canonical
    /// event order by construction.
    fn finish(self) -> ThreadedRun {
        for h in &self.handles {
            h.send(WorkerCmd::Drain);
        }
        let mut completions = Vec::new();
        let mut shed = Vec::new();
        let mut stats = ServeStats::default();
        let mut per_worker = Vec::with_capacity(self.handles.len());
        let mut events = self.routing_events;
        let late_events = self.late_events;
        for h in &self.handles {
            match h.recv() {
                WorkerReply::Finished {
                    report,
                    events: worker_events,
                } => {
                    let ServeReport {
                        completions: c,
                        shed: s,
                        stats: st,
                    } = *report;
                    completions.extend(c);
                    shed.extend(s);
                    stats.merge(&st);
                    per_worker.push(st);
                    events.extend(worker_events);
                }
                other => panic!("expected Finished reply, got {other:?}"),
            }
        }
        // Fleet-level sheds trail the owning worker's stream (the
        // position the lockstep shared log gives them); re-grouping
        // restores the canonical fixed point.
        if !late_events.is_empty() {
            events.extend(late_events);
            events = verispec_trace::canonicalize_fleet_events(&events);
        }
        // Fleet-level fault counters and sheds, exactly as the
        // lockstep `Dispatcher::into_report` folds them.
        stats.merge(&self.fleet_stats);
        shed.extend(self.fleet_shed);
        completions.sort_by_key(|c| c.id);
        shed.sort_by_key(|s| s.id);
        let mut assignments = self.assignments;
        assignments.sort_unstable();
        ThreadedRun {
            report: DispatchReport {
                completions,
                shed,
                stats,
                per_worker,
                assignments,
            },
            events,
        }
    }
}

impl crate::runtime::FleetBackend for Fleet {
    fn now(&self) -> u64 {
        Fleet::now(self)
    }

    fn fleet_has_work(&self) -> bool {
        self.any_busy()
    }

    fn alive(&self) -> &[bool] {
        &self.alive
    }

    fn route_submit(&mut self, req: Request) -> usize {
        self.submit(req)
    }

    fn tick_round(&mut self, _cost: &GpuCostModel) {
        // Workers hold the cost model themselves; a round is purely
        // the tick barrier.
        self.barrier_tick_round();
    }

    fn crash_worker(&mut self, w: usize, at: u64) -> Vec<(Request, usize)> {
        self.handles[w].send(WorkerCmd::Crash { at });
        let stranded = match self.handles[w].recv() {
            WorkerReply::Crashed { stranded } => stranded,
            other => panic!("expected Crashed reply, got {other:?}"),
        };
        // Mirror the replacement engine exactly: cold (no work), clock
        // started at the crash tick.
        self.handles[w].clock = at;
        self.handles[w].has_work = false;
        self.alive[w] = false;
        stranded
    }

    fn restart_worker(&mut self, w: usize, at: u64) {
        self.handles[w].send(WorkerCmd::Restart { at });
        // advance_clock is max(clock, at); mirror it without a
        // round-trip.
        self.handles[w].clock = self.handles[w].clock.max(at);
        self.alive[w] = true;
    }

    fn record_fleet_event(&mut self, ev: TraceEvent) {
        self.fleet_stats.apply_event(&ev);
        if self.traced {
            if ev.kind.is_fleet_event() {
                self.routing_events.push(ev);
            } else {
                self.late_events.push(ev);
            }
        }
    }

    fn shed_fleet(&mut self, req: Request, tick: u64) {
        self.fleet_shed.push(crate::engine::ShedRequest {
            id: req.id,
            arrival: req.arrival,
            deadline: req.deadline,
            tick,
        });
    }
}

/// One worker thread's whole life: build the engine locally, serve
/// commands FIFO, then free-run to completion and report.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    model: &MlpLm,
    cfg: ServeConfig,
    draft: Option<&(dyn LanguageModel + Sync)>,
    grammar: Option<&GrammarOracle>,
    policy: Option<&dyn SpecPolicy>,
    warm: Vec<Vec<TokenId>>,
    traced: bool,
    worker: u32,
    cost: &GpuCostModel,
    cmds: mpsc::Receiver<WorkerCmd>,
    replies: mpsc::Sender<WorkerReply>,
) {
    let log = EventLog::new();
    // Engine construction, shared by startup and crash rebuilds. Warm
    // stems are startup-only: a crash replacement starts cold-cache,
    // matching the lockstep backend's `rebuild_worker`.
    let build = |warm: &[Vec<TokenId>]| {
        let mut engine = ServeEngine::new(model, cfg.clone());
        if let Some(d) = draft {
            engine = engine.with_draft(d as &dyn LanguageModel);
        }
        if let Some(g) = grammar {
            engine = engine.with_grammar(g);
        }
        if let Some(p) = policy {
            engine = engine.with_policy(p);
        }
        engine.set_worker(worker);
        if traced {
            engine.set_sink(&log);
        }
        for stem in warm {
            engine.warm_prefix(stem);
        }
        engine
    };
    // Report segments banked by crashed engine incarnations, merged
    // with the final engine's report before the Finished reply.
    let mut segments: Vec<ServeReport> = Vec::new();
    let mut engine = build(&warm);
    for cmd in cmds {
        match cmd {
            WorkerCmd::Submit(req) => engine.submit(*req),
            WorkerCmd::Tick => {
                engine.tick(cost);
                let reply = WorkerReply::Ticked {
                    clock: engine.clock(),
                    has_work: engine.has_work(),
                };
                if replies.send(reply).is_err() {
                    return;
                }
            }
            WorkerCmd::Probe(prompt) => {
                let reply = WorkerReply::Probed(RouteProbes {
                    ready_depth: engine.ready_depth() as u64,
                    outstanding_cost: engine.outstanding_cost() as u64,
                    prefix_depth: engine.prefix_match_depth(&prompt) as u64,
                });
                if replies.send(reply).is_err() {
                    return;
                }
            }
            WorkerCmd::Crash { at } => {
                let mut fresh = build(&[]);
                fresh.advance_clock(at);
                let old = std::mem::replace(&mut engine, fresh);
                let (report, stranded) = old.crash();
                segments.push(report);
                if replies.send(WorkerReply::Crashed { stranded }).is_err() {
                    return;
                }
            }
            WorkerCmd::Restart { at } => engine.advance_clock(at),
            WorkerCmd::Drain => break,
        }
    }
    // Barrier-free drain: no command can affect this worker anymore,
    // so its remaining tick sequence is a pure local computation —
    // identical to the lockstep drive's tail rounds (in which extra
    // ticks on an already-empty engine are no-ops).
    while engine.tick(cost) {}
    segments.push(engine.into_report_parts());
    let report = Box::new(crate::runtime::merge_segments(segments));
    let _ = replies.send(WorkerReply::Finished {
        report,
        events: log.into_events(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{dispatch_all, Dispatcher, RoutePolicy};
    use crate::request::EngineChoice;
    use verispec_core::DecodeConfig;
    use verispec_lm::MlpLmConfig;
    use verispec_trace::canonicalize_fleet_events;

    fn model() -> MlpLm {
        MlpLm::new(MlpLmConfig {
            vocab: 14,
            d_emb: 6,
            d_hidden: 12,
            context: 4,
            n_heads: 3,
            seed: 33,
        })
    }

    fn request(id: u64, arrival: u64, budget: usize) -> Request {
        Request {
            id,
            prompt: vec![1 + (id % 4) as TokenId, 2],
            engine: EngineChoice::SyntaxAligned {
                tree: Some(vec![2, 2]),
            },
            cfg: DecodeConfig {
                max_tokens: budget,
                seed: id,
                ..Default::default()
            },
            arrival,
            deadline: None,
            class: 0,
        }
    }

    #[test]
    fn threaded_batch_matches_lockstep_batch() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let requests: Vec<Request> = (0..6).map(|id| request(id, 0, 4)).collect();
        let lockstep = dispatch_all(
            &m,
            None,
            requests.clone(),
            &ServeConfig::concurrency(2),
            &DispatchConfig::new(3, RoutePolicy::RoundRobin),
            &cost,
        );
        let threaded = ThreadedDispatcher::new(
            &m,
            ServeConfig::concurrency(2),
            DispatchConfig::new(3, RoutePolicy::RoundRobin),
        )
        .run_threaded(requests, &cost);
        assert!(threaded.report.same_schedule(&lockstep));
        assert!(threaded.events.is_empty(), "untraced runs carry no events");
    }

    #[test]
    fn threaded_paced_matches_lockstep_under_probing_route() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let requests: Vec<Request> = (0..8).map(|id| request(id, id / 2, 3)).collect();
        let log = EventLog::new();
        let lockstep = Dispatcher::new(
            &m,
            ServeConfig::concurrency(2),
            DispatchConfig::new(2, RoutePolicy::JoinShortestQueue),
        )
        .with_sink(&log)
        .run_paced(requests.clone(), &cost);
        let threaded = ThreadedDispatcher::new(
            &m,
            ServeConfig::concurrency(2),
            DispatchConfig::new(2, RoutePolicy::JoinShortestQueue),
        )
        .with_tracing()
        .run_paced_threaded(requests, &cost);
        assert!(threaded.report.same_schedule(&lockstep));
        assert_eq!(
            canonicalize_fleet_events(&threaded.events),
            canonicalize_fleet_events(&log.into_events()),
        );
        // The threaded merge is already canonical.
        assert_eq!(canonicalize_fleet_events(&threaded.events), threaded.events);
    }

    #[test]
    fn threaded_prefix_affine_follows_the_warm_stem() {
        let m = model();
        let cost = GpuCostModel::codellama_like();
        let cfg = ServeConfig {
            prefix_cache: true,
            ..ServeConfig::concurrency(2)
        };
        let stem: Vec<TokenId> = vec![1, 2, 3];
        let requests = vec![
            Request {
                prompt: vec![1, 2, 3, 4, 5],
                ..request(0, 0, 4)
            },
            Request {
                prompt: vec![1, 2, 3, 4, 5, 6],
                ..request(1, 2, 4)
            },
        ];
        let mut lockstep_d = Dispatcher::new(
            &m,
            cfg.clone(),
            DispatchConfig::new(3, RoutePolicy::PrefixAffine),
        );
        assert_eq!(lockstep_d.warm_prefix(&stem), 3);
        let lockstep = lockstep_d.run_paced(requests.clone(), &cost);
        let threaded =
            ThreadedDispatcher::new(&m, cfg, DispatchConfig::new(3, RoutePolicy::PrefixAffine))
                .warm_prefix(&stem)
                .run_paced_threaded(requests, &cost);
        assert!(threaded.report.same_schedule(&lockstep));
        // Both runs route the deeper stem extension to the worker the
        // first request warmed.
        assert_eq!(threaded.report.assignments, lockstep.assignments);
        assert_eq!(threaded.report.worker_of(0), threaded.report.worker_of(1));
    }
}
