//! The continuous-batching serving engine: a pool of
//! [`verispec_lm::DecodeSession`]-backed [`Stepper`]s advanced by a
//! tick loop that fuses the model work of concurrent requests.
//!
//! Each tick:
//!
//! 1. **admission** — queued requests whose arrival tick has passed
//!    fill free session slots (up to `max_active`); if none is free
//!    and a request has waited past `preempt_wait`, the most-advanced
//!    active request is *preempted*: its stepper is parked (sessions
//!    released — legal between steps because speculation has been
//!    rolled back, so the stepper holds exactly its committed context)
//!    and re-queued, and the starved request takes its slot.
//! 2. **selection** — the [`Scheduler`] picks up to `max_batch` active
//!    requests (round-robin / shortest-first / seeded order, with an
//!    aging guard bounding every request's service gap — see
//!    [`Scheduler::starvation_bound`]).
//! 3. **fused propose** — the MEDUSA-style members of the batch expose
//!    their current-position embeddings and get their multi-head
//!    logits from **one** [`verispec_lm::multi_logits_many`] pass.
//! 4. **fused verify** — every member's candidate paths become a
//!    [`verispec_lm::VerifyPlan`]; all plans execute in **one**
//!    [`verispec_lm::verify_many`] pass (per-request `verify_batch`
//!    is the fallback for non-fusable sessions).
//! 5. **commit** — each stepper applies acceptance/rollback locally.
//!
//! Because the batched kernels are bit-identical to the single-vector
//! paths for every input regardless of batch composition, each
//! request's token stream equals the serial single-session engine's —
//! the property `tests/proptest_serve.rs` pins.

use crate::request::{Completion, EngineChoice, Request};
use crate::scheduler::{ActiveView, Scheduler, TickOrder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use verispec_core::{Phase, Stepper};
use verispec_lm::{
    multi_logits_many, verify_many, DecodeSession, GpuCostModel, LanguageModel, MlpLm, VerifyPlan,
};

/// Serving-engine knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Session-pool size: maximum concurrently active requests.
    pub max_active: usize,
    /// Maximum requests stepped (and fused) per tick.
    pub max_batch: usize,
    /// Selection order within a tick.
    pub order: TickOrder,
    /// Queue-wait ticks after which an arrived request may preempt the
    /// most-advanced active request; `None` disables preemption.
    pub preempt_wait: Option<u64>,
    /// Fuse propose/verify model work across the batch (needs a fused
    /// model handle, see [`ServeEngine::new`]); `false` forces
    /// per-session execution — same outputs, used for A/B testing.
    pub fuse: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_active: 8,
            max_batch: 8,
            order: TickOrder::RoundRobin,
            preempt_wait: None,
            fuse: true,
        }
    }
}

impl ServeConfig {
    /// A config serving up to `n` requests concurrently (pool and batch
    /// both `n`).
    pub fn concurrency(n: usize) -> Self {
        ServeConfig {
            max_active: n.max(1),
            max_batch: n.max(1),
            ..Default::default()
        }
    }
}

/// Aggregate counters of one serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Positions whose multi-head logits came from fused cross-request
    /// passes.
    pub fused_propose_positions: usize,
    /// Candidate-tree nodes scored through fused [`verify_many`] calls.
    pub fused_verify_nodes: usize,
    /// Fused [`verify_many`] calls (one per tick with fusable work).
    pub fused_verify_calls: usize,
    /// Per-session `verify_batch`/`logits` fallback verifications.
    pub local_verify_calls: usize,
    /// Preemptions performed.
    pub preemptions: usize,
    /// Largest active-set size observed.
    pub peak_active: usize,
    /// Total tokens committed across all completed requests.
    pub served_tokens: usize,
}

/// The result of a serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// All finished requests, sorted by id.
    pub completions: Vec<Completion>,
    /// Aggregate counters.
    pub stats: ServeStats,
}

impl ServeReport {
    /// The completion of request `id`, if it finished.
    pub fn completion(&self, id: u64) -> Option<&Completion> {
        self.completions.iter().find(|c| c.id == id)
    }

    /// Total generated tokens across all completions.
    pub fn total_tokens(&self) -> usize {
        self.completions.iter().map(|c| c.output.tokens.len()).sum()
    }
}

/// One admitted request.
struct Active<'m> {
    id: u64,
    stepper: Stepper<'m>,
    submitted: u64,
    admitted: u64,
    last_step: u64,
    max_gap: u64,
    preemptions: u32,
}

/// One queued (not yet active) request.
enum QueueEntry<'m> {
    /// Awaiting first admission, optionally with a forked, pre-ingested
    /// prompt-prefix session.
    Fresh {
        req: Request,
        session: Option<Box<dyn DecodeSession + 'm>>,
    },
    /// Preempted mid-generation; resumes by unparking (boxed: a parked
    /// request carries its whole stepper state).
    Parked(Box<Active<'m>>),
}

/// The serving engine; see the module docs for the tick anatomy.
pub struct ServeEngine<'m> {
    target: &'m dyn LanguageModel,
    /// Concrete model handle for fused cross-request execution; `None`
    /// serves correctly but without fusion.
    fused: Option<&'m MlpLm>,
    draft: Option<&'m dyn LanguageModel>,
    cfg: ServeConfig,
    scheduler: Scheduler,
    queue: Vec<QueueEntry<'m>>,
    active: Vec<Active<'m>>,
    completions: Vec<Completion>,
    tick: u64,
    stats: ServeStats,
}

impl<'m> ServeEngine<'m> {
    /// An engine over a fusable model: cross-request propose/verify
    /// fusion is enabled (unless `cfg.fuse` is off).
    pub fn new(model: &'m MlpLm, cfg: ServeConfig) -> Self {
        let fused = cfg.fuse.then_some(model);
        Self::build(model, fused, cfg)
    }

    /// An engine over any [`LanguageModel`]: correct but unfused (every
    /// session verifies its own work) — the A/B baseline and the path
    /// for models without a fusable session representation.
    pub fn new_unfused(model: &'m dyn LanguageModel, cfg: ServeConfig) -> Self {
        Self::build(model, None, cfg)
    }

    fn build(target: &'m dyn LanguageModel, fused: Option<&'m MlpLm>, cfg: ServeConfig) -> Self {
        let scheduler = Scheduler::new(cfg.order, cfg.max_active, cfg.max_batch);
        ServeEngine {
            target,
            fused,
            draft: None,
            cfg,
            scheduler,
            queue: Vec::new(),
            active: Vec::new(),
            completions: Vec::new(),
            tick: 0,
            stats: ServeStats::default(),
        }
    }

    /// Attaches the draft model [`EngineChoice::DraftVerify`] requests
    /// verify against.
    pub fn with_draft(mut self, draft: &'m dyn LanguageModel) -> Self {
        self.draft = Some(draft);
        self
    }

    /// Enqueues a request.
    pub fn submit(&mut self, req: Request) {
        self.queue.push(QueueEntry::Fresh { req, session: None });
    }

    /// Enqueues a request whose prompt prefix is already ingested in
    /// `session` (typically a [`DecodeSession::fork`] of one shared
    /// prefix session); only the prompt remainder is appended at
    /// admission.
    ///
    /// # Panics
    ///
    /// Panics if the session's context is not a prefix of `req.prompt`.
    pub fn submit_with_session(&mut self, req: Request, session: Box<dyn DecodeSession + 'm>) {
        assert!(
            req.prompt.starts_with(session.tokens()),
            "prefix session context must be a prefix of the request prompt"
        );
        self.queue.push(QueueEntry::Fresh {
            req,
            session: Some(session),
        });
    }

    /// Requests not yet completed (queued + active).
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    fn make_stepper(
        &self,
        req: &Request,
        session: Option<Box<dyn DecodeSession + 'm>>,
    ) -> Stepper<'m> {
        let session = session.unwrap_or_else(|| self.target.session());
        let ingested = session.tokens().len();
        debug_assert!(req.prompt.starts_with(session.tokens()));
        let rest = &req.prompt[ingested..];
        match &req.engine {
            EngineChoice::Ntp => Stepper::ntp_from_session(
                self.target,
                session,
                rest,
                req.engine.decode_config(&req.cfg),
            ),
            EngineChoice::DraftVerify { .. } => {
                let draft = self
                    .draft
                    .expect("DraftVerify requests need ServeEngine::with_draft");
                let dcfg = req
                    .engine
                    .draft_config(&req.cfg)
                    .expect("draft engine resolves a draft config");
                Stepper::draft_verify_from_session(self.target, draft, session, rest, dcfg)
            }
            _ => Stepper::speculative_from_session(
                self.target,
                session,
                rest,
                req.engine.decode_config(&req.cfg),
            ),
        }
    }

    fn admit(&mut self, entry: QueueEntry<'m>) {
        match entry {
            QueueEntry::Fresh { req, session } => {
                let stepper = self.make_stepper(&req, session);
                self.active.push(Active {
                    id: req.id,
                    stepper,
                    submitted: req.arrival,
                    admitted: self.tick,
                    last_step: self.tick,
                    max_gap: 0,
                    preemptions: 0,
                });
            }
            QueueEntry::Parked(mut a) => {
                a.stepper.unpark();
                a.last_step = self.tick;
                self.active.push(*a);
            }
        }
    }

    fn entry_ready(&self, entry: &QueueEntry<'m>) -> bool {
        match entry {
            QueueEntry::Fresh { req, .. } => req.arrival <= self.tick,
            QueueEntry::Parked(_) => true,
        }
    }

    fn admit_ready(&mut self) {
        while self.active.len() < self.cfg.max_active {
            let Some(pos) = (0..self.queue.len()).find(|&i| self.entry_ready(&self.queue[i]))
            else {
                break;
            };
            let entry = self.queue.remove(pos);
            self.admit(entry);
        }
    }

    /// Rollback-aware preemption: when an arrived request has waited
    /// past `preempt_wait` with the pool full, the most-advanced active
    /// request (never one already preempted — bounds ping-pong) is
    /// parked to the queue and the starved request takes its slot.
    fn maybe_preempt(&mut self) {
        let Some(wait) = self.cfg.preempt_wait else {
            return;
        };
        if self.active.len() < self.cfg.max_active {
            return;
        }
        let starved = (0..self.queue.len()).find(|&i| match &self.queue[i] {
            QueueEntry::Fresh { req, .. } => {
                req.arrival <= self.tick && self.tick - req.arrival >= wait
            }
            QueueEntry::Parked(_) => false,
        });
        let Some(pos) = starved else {
            return;
        };
        let victim = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, a)| a.preemptions == 0)
            .max_by_key(|(_, a)| (a.stepper.generated(), a.id))
            .map(|(i, _)| i);
        let Some(v) = victim else {
            return;
        };
        let mut parked = self.active.swap_remove(v);
        parked.stepper.park();
        parked.preemptions += 1;
        self.stats.preemptions += 1;
        self.queue.push(QueueEntry::Parked(Box::new(parked)));
        let entry = self.queue.remove(pos);
        self.admit(entry);
    }

    fn finish(&mut self, a: Active<'m>) {
        self.stats.served_tokens += a.stepper.generated();
        let draft_stats = a.stepper.draft_stats();
        self.completions.push(Completion {
            id: a.id,
            output: a.stepper.into_output(),
            draft_stats,
            submitted: a.submitted,
            admitted: a.admitted,
            finished: self.tick,
            max_service_gap: a.max_gap,
            preemptions: a.preemptions,
        });
    }

    /// Runs one scheduler tick; returns `false` once no work remains.
    pub fn tick(&mut self, cost: &GpuCostModel) -> bool {
        if self.queue.is_empty() && self.active.is_empty() {
            return false;
        }
        self.tick += 1;
        self.stats.ticks += 1;
        self.admit_ready();
        self.maybe_preempt();
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());

        let views: Vec<ActiveView> = self
            .active
            .iter()
            .map(|a| ActiveView {
                id: a.id,
                last_step: a.last_step,
                admitted: a.admitted,
                generated: a.stepper.generated(),
            })
            .collect();
        let selected = self.scheduler.select(&views, self.tick, self.cfg.max_batch);
        for &i in &selected {
            let a = &mut self.active[i];
            a.max_gap = a.max_gap.max(self.tick - a.last_step);
            a.last_step = self.tick;
        }

        // Fused propose: one batched trunk + per-head pass serves every
        // MEDUSA-style member of the batch. Below the batched kernel's
        // lane width the padded lanes + per-head transposes cost more
        // than the per-session cached path saves (measured in
        // BENCH_serve.json), so propose fusion waits for a full lane;
        // verify fusion has no such floor because the serial path runs
        // the same batched kernel anyway.
        const MIN_FUSED_PROPOSE: usize = 8;
        let mut pre: HashMap<usize, Vec<Vec<f32>>> = HashMap::new();
        if let Some(model) = self.fused {
            // Count candidates before gathering, so small batches never
            // pay the embedding clones just to throw them away.
            let candidates = selected
                .iter()
                .filter(|&&i| self.active[i].stepper.wants_multi_logits())
                .count();
            if candidates >= MIN_FUSED_PROPOSE {
                let mut idxs = Vec::with_capacity(candidates);
                let mut xs: Vec<Vec<f32>> = Vec::with_capacity(candidates);
                for &i in &selected {
                    let st = &mut self.active[i].stepper;
                    if st.wants_multi_logits() {
                        if let Some(x) = st.embed_plan() {
                            idxs.push(i);
                            xs.push(x);
                        }
                    }
                }
                self.stats.fused_propose_positions += xs.len();
                for (i, logits) in idxs.into_iter().zip(multi_logits_many(model, &xs)) {
                    pre.insert(i, logits);
                }
            }
        }
        let mut phases: Vec<(usize, Phase)> = Vec::with_capacity(selected.len());
        for &i in &selected {
            let logits = pre.remove(&i);
            let phase = self.active[i].stepper.propose(logits);
            phases.push((i, phase));
        }

        // Fused verify: every member's candidate tree in one pass.
        let mut scored: HashMap<usize, Vec<Vec<Vec<f32>>>> = HashMap::new();
        let mut plan_idx: Vec<usize> = Vec::new();
        let mut plans: Vec<VerifyPlan> = Vec::new();
        for &(i, phase) in &phases {
            if matches!(phase, Phase::Verify { .. }) {
                let st = &mut self.active[i].stepper;
                match self.fused.and_then(|_| st.verify_plan()) {
                    Some(plan) => {
                        plan_idx.push(i);
                        plans.push(plan);
                    }
                    None => {
                        self.stats.local_verify_calls += 1;
                        scored.insert(i, st.verify_local());
                    }
                }
            }
        }
        if !plans.is_empty() {
            self.stats.fused_verify_calls += 1;
            self.stats.fused_verify_nodes += plans.iter().map(VerifyPlan::n_nodes).sum::<usize>();
            let model = self.fused.expect("plans only exist with a fused model");
            for (i, result) in plan_idx.into_iter().zip(verify_many(model, &plans)) {
                scored.insert(i, result);
            }
        }

        // Commit: acceptance, rollback, clock — all request-local.
        for (i, phase) in phases {
            match phase {
                Phase::Done => {}
                Phase::Commit => self.active[i].stepper.commit(Vec::new(), cost),
                Phase::Verify { .. } => {
                    let s = scored.remove(&i).expect("scored in verify phase");
                    self.active[i].stepper.commit(s, cost);
                }
            }
        }

        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].stepper.done() {
                let a = self.active.swap_remove(i);
                self.finish(a);
            } else {
                i += 1;
            }
        }
        !(self.queue.is_empty() && self.active.is_empty())
    }

    /// Drives the tick loop until every submitted request completes.
    pub fn run(mut self, cost: &GpuCostModel) -> ServeReport {
        while self.tick(cost) {}
        self.completions.sort_by_key(|c| c.id);
        ServeReport {
            completions: self.completions,
            stats: self.stats,
        }
    }
}

/// Serves `requests` to completion on one engine (single worker).
pub fn serve_all(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
) -> ServeReport {
    let mut engine = ServeEngine::new(model, cfg.clone());
    if let Some(d) = draft {
        engine = engine.with_draft(d);
    }
    for req in requests {
        engine.submit(req);
    }
    engine.run(cost)
}

/// The multi-core variant: requests are sharded round-robin across
/// `workers` engines running in a `std::thread::scope` pool over the
/// same shared model. Per-request outputs are identical to
/// [`serve_all`] — each request is processed by exactly one
/// deterministic engine. Merged stats sum the counters; `ticks` and
/// `peak_active` take the per-worker maximum.
pub fn serve_all_threaded(
    model: &MlpLm,
    draft: Option<&(dyn LanguageModel + Sync)>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
    workers: usize,
) -> ServeReport {
    let workers = workers.max(1);
    let mut shards: Vec<Vec<Request>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, req) in requests.into_iter().enumerate() {
        shards[i % workers].push(req);
    }
    let reports: Vec<ServeReport> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                s.spawn(move || {
                    serve_all(
                        model,
                        draft.map(|d| d as &dyn LanguageModel),
                        shard,
                        cfg,
                        cost,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    let mut completions = Vec::new();
    let mut stats = ServeStats::default();
    for r in reports {
        completions.extend(r.completions);
        stats.ticks = stats.ticks.max(r.stats.ticks);
        stats.peak_active = stats.peak_active.max(r.stats.peak_active);
        stats.fused_propose_positions += r.stats.fused_propose_positions;
        stats.fused_verify_nodes += r.stats.fused_verify_nodes;
        stats.fused_verify_calls += r.stats.fused_verify_calls;
        stats.local_verify_calls += r.stats.local_verify_calls;
        stats.preemptions += r.stats.preemptions;
        stats.served_tokens += r.stats.served_tokens;
    }
    completions.sort_by_key(|c| c.id);
    ServeReport { completions, stats }
}
