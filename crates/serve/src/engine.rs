//! The continuous-batching serving engine: a pool of
//! [`verispec_lm::DecodeSession`]-backed [`Stepper`]s advanced by a
//! tick loop that fuses the model work of concurrent requests.
//!
//! Each tick:
//!
//! 1. **admission** — queued requests whose arrival tick has passed
//!    fill free session slots (up to `max_active`); if none is free
//!    and a request has waited past `preempt_wait`, the most-advanced
//!    active request is *preempted*: its stepper is parked (sessions
//!    released — legal between steps because speculation has been
//!    rolled back, so the stepper holds exactly its committed context)
//!    and re-queued, and the starved request takes its slot.
//! 2. **selection** — the [`Scheduler`] picks up to `max_batch` active
//!    requests (round-robin / shortest-first / seeded order, with an
//!    aging guard bounding every request's service gap — see
//!    [`Scheduler::starvation_bound`]).
//! 3. **fused propose** — the MEDUSA-style members of the batch expose
//!    their current-position embeddings and get their multi-head
//!    logits from **one** [`verispec_lm::multi_logits_many`] pass.
//! 4. **fused verify** — every member's candidate paths become a
//!    [`verispec_lm::VerifyPlan`]; all plans execute in **one**
//!    [`verispec_lm::verify_many`] pass (per-request `verify_batch`
//!    is the fallback for non-fusable sessions).
//! 5. **commit** — each stepper applies acceptance/rollback locally.
//!
//! Because the batched kernels are bit-identical to the single-vector
//! paths for every input regardless of batch composition, each
//! request's token stream equals the serial single-session engine's —
//! the property `tests/proptest_serve.rs` pins.

use crate::prefix::PrefixCache;
use crate::request::{Completion, EngineChoice, Request};
use crate::scheduler::{ActiveView, Scheduler, TickOrder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use verispec_core::{
    AcceptHistory, Phase, ShapeQuery, SpecPolicy, SpecShape, Stepper, STATIC_POLICY,
};
use verispec_grammar::GrammarOracle;
use verispec_lm::{
    multi_logits_many, verify_many, DecodeSession, GpuCostModel, LanguageModel, MlpLm, VerifyPlan,
};
use verispec_trace::{EventKind, TraceEvent, TraceSink, NOOP};

/// Serving-engine knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Session-pool size: maximum concurrently active requests.
    pub max_active: usize,
    /// Maximum requests stepped (and fused) per tick.
    pub max_batch: usize,
    /// Selection order within a tick.
    pub order: TickOrder,
    /// Queue-wait ticks after which an arrived request may preempt the
    /// most-advanced active request; `None` disables preemption.
    pub preempt_wait: Option<u64>,
    /// Fuse propose/verify model work across the batch (needs a fused
    /// model handle, see [`ServeEngine::new`]); `false` forces
    /// per-session execution — same outputs, used for A/B testing.
    pub fuse: bool,
    /// Memory budget: maximum resident sessions (active steppers plus
    /// queued pre-ingested prefix forks). When streaming admission
    /// queues thousands of forked arrivals, the engine evicts idle
    /// forks least-recently-submitted first by *dropping* them — the
    /// same exact-replay path preemption uses, so admission rebuilds
    /// the session from the full prompt and outputs are unchanged.
    /// Active sessions are never evicted below `max_active` (the
    /// working set); `None` disables the cap.
    pub session_cap: Option<usize>,
    /// Per-tick verify capacity in [`verispec_core::SpecShape::step_cost`]
    /// units (base/bonus row + candidate tokens; an NTP step costs 1).
    /// When set, each tick's batch is gated by this budget instead of
    /// only `max_batch`: the engine walks the scheduler's order, asks
    /// the speculation policy for each request's shape with the
    /// remaining budget as its cap, and defers requests whose shape
    /// does not fit (the first request in order always steps, so the
    /// aging guard's no-starvation bound survives). `None` (the
    /// default) keeps the pre-policy behavior: candidates are not
    /// charged against tick time. A policy with its own
    /// [`verispec_core::SpecPolicy::tick_budget`] supplies the capacity
    /// when this is `None`.
    pub tick_capacity: Option<usize>,
    /// Load-shedding admission control: when more than this many
    /// *ready* fresh requests (arrival tick due, not yet admitted) are
    /// waiting after admission, the newest arrivals are shed —
    /// rejected outright, reported in [`ServeReport::shed`] — instead
    /// of queueing without bound. Deterministic per tick schedule, so
    /// batch and streaming runs shed identically. `None` disables
    /// shedding.
    pub shed_depth: Option<usize>,
    /// Enables the radix-tree prefix cache ([`crate::PrefixCache`]):
    /// admission walks the trie to the deepest cached prefix of the
    /// prompt, forks a copy-on-write session from it, and appends only
    /// the unmatched suffix; misses insert the prompt (splitting edges
    /// on divergence) so later requests sharing a stem hit. Cache
    /// residency is charged against [`ServeConfig::session_cap`]
    /// alongside live sessions, and eviction is exact-replay (LRU
    /// leaves are dropped; a later miss rebuilds from the full prompt,
    /// outputs bit-identical). Requires a model with
    /// [`LanguageModel::snapshot_session`]; inert otherwise.
    #[serde(default)]
    pub prefix_cache: bool,
    /// Prompt-ingestion cost model: tokens ingested per tick at
    /// admission. A freshly admitted request *warms up* for
    /// `ceil(suffix / rate) - 1` ticks — where `suffix` is the part of
    /// its prompt **not** covered by a pre-ingested session (prefix
    /// fork or cache hit) — before it becomes schedulable, so prefix
    /// reuse shows up as tick-space TTFT savings. `None` (the default)
    /// keeps ingestion free, the pre-cache behavior. Token streams are
    /// unaffected either way — warmup only shifts scheduling.
    #[serde(default)]
    pub ingest_rate: Option<usize>,
    /// Per-class weighted-fairness shares consumed by
    /// [`TickOrder::WeightedFair`]: entry `i` is the scheduling weight
    /// of request class `i` ([`Request::class`]); classes beyond the
    /// vector (and zero entries) default to weight 1. Ignored by every
    /// other tick order. Weights steer only *when* requests step —
    /// outputs are class-invariant.
    #[serde(default)]
    pub class_weights: Vec<u32>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_active: 8,
            max_batch: 8,
            order: TickOrder::RoundRobin,
            preempt_wait: None,
            fuse: true,
            session_cap: None,
            tick_capacity: None,
            shed_depth: None,
            prefix_cache: false,
            ingest_rate: None,
            class_weights: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// A config serving up to `n` requests concurrently (pool and batch
    /// both `n`).
    pub fn concurrency(n: usize) -> Self {
        ServeConfig {
            max_active: n.max(1),
            max_batch: n.max(1),
            ..Default::default()
        }
    }
}

/// Aggregate counters of one serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Positions whose multi-head logits came from fused cross-request
    /// passes.
    pub fused_propose_positions: usize,
    /// Candidate-tree nodes scored through fused [`verify_many`] calls.
    pub fused_verify_nodes: usize,
    /// Fused [`verify_many`] calls (one per tick with fusable work).
    pub fused_verify_calls: usize,
    /// Per-session `verify_batch`/`logits` fallback verifications.
    pub local_verify_calls: usize,
    /// Preemptions performed.
    pub preemptions: usize,
    /// Largest active-set size observed.
    pub peak_active: usize,
    /// Total tokens committed across all completed requests.
    pub served_tokens: usize,
    /// Idle prefix-fork sessions dropped by the memory-budget cap
    /// ([`ServeConfig::session_cap`]); each evicted request is rebuilt
    /// exactly at admission by replaying its full prompt.
    pub session_evictions: usize,
    /// High-water mark of resident sessions (active steppers + queued
    /// prefix forks) — the memory the cap bounds.
    pub peak_resident_sessions: usize,
    /// Empty ticks skipped by the idle fast-forward (nothing active,
    /// every queued request still in the future): the clock jumps to
    /// the next arrival instead of burning these one by one.
    pub idle_ticks_skipped: u64,
    /// Candidate tokens speculated across all completed requests (what
    /// the speculation policies spent).
    pub proposed_tokens: usize,
    /// Speculated tokens accepted across all completed requests (what
    /// the spend cashed into).
    pub accepted_tokens: usize,
    /// Requests rejected by load-shedding admission control
    /// ([`ServeConfig::shed_depth`]); their ids are in
    /// [`ServeReport::shed`].
    pub shed_requests: usize,
    /// Scheduled steps pushed to a later tick because the request's
    /// speculation shape did not fit the remaining per-tick verify
    /// capacity ([`ServeConfig::tick_capacity`]).
    pub deferred_steps: u64,
    /// Fresh admissions whose prompt hit the prefix cache (a cached
    /// stem was forked instead of re-ingesting it).
    #[serde(default)]
    pub prefix_hits: usize,
    /// Fresh admissions that missed the prefix cache (full-prompt
    /// ingestion; the prompt was inserted for later requests). Only
    /// counted while the cache is enabled.
    #[serde(default)]
    pub prefix_misses: usize,
    /// Prompt tokens whose ingestion prefix-cache hits skipped (the sum
    /// of hit depths — the O(prompt) → O(suffix) savings).
    #[serde(default)]
    pub prefix_tokens_saved: usize,
    /// Cache snapshots dropped by the session cap's LRU-leaf eviction
    /// ([`ServeConfig::session_cap`]); later misses rebuild exactly.
    #[serde(default)]
    pub prefix_evictions: usize,
    /// High-water mark of snapshot-holding trie nodes.
    #[serde(default)]
    pub peak_resident_nodes: usize,
    /// Histogram of prefix-cache hit depths, log₂-bucketed: bucket `i`
    /// counts hits whose matched depth `d` satisfies
    /// `2^i <= d < 2^(i+1)` (the last bucket absorbs deeper hits).
    #[serde(default)]
    pub prefix_depth_hist: [u64; 8],
    /// Candidate tokens grammar-constrained steps built before
    /// dead-tail pruning (0 unless [`EngineChoice::GrammarTree`]
    /// requests ran with an oracle attached).
    #[serde(default)]
    pub grammar_considered: usize,
    /// Candidate tokens cut at propose time as dead tails — speculation
    /// that was never verified because it could not survive the
    /// post-hoc syntax check.
    #[serde(default)]
    pub grammar_pruned: usize,
    /// Candidate tokens grammar-constrained steps actually sent to
    /// verification (`considered - pruned`).
    #[serde(default)]
    pub grammar_surviving: usize,
    /// Worker crashes injected by a fault plan
    /// ([`crate::runtime::FaultPlan`]); counted on the fleet
    /// coordinator's stream, not inside any worker.
    #[serde(default)]
    pub crashes: usize,
    /// Worker restarts injected by a fault plan.
    #[serde(default)]
    pub restarts: usize,
    /// Requests migrated off crashed workers — re-routed through the
    /// live router and rebuilt elsewhere by exact replay (the crash
    /// recovery path; outputs stay token-identical).
    #[serde(default)]
    pub migrations: usize,
    /// Tokens migrated requests had already generated when their worker
    /// crashed — the decode work the fault threw away and exact replay
    /// regenerates elsewhere.
    #[serde(default)]
    pub replayed_tokens: usize,
    /// Arrivals and migrants deferred at the fleet level because no
    /// worker was alive to route to (backpressure; they re-route on the
    /// next restart).
    #[serde(default)]
    pub backpressure_deferrals: usize,
}

impl ServeStats {
    /// Folds one trace event into the aggregate counters — the
    /// **single place** every event-equivalent stat is maintained, so
    /// these counters can never disagree with the event stream that
    /// produced them ([`verispec_trace::MetricsRegistry`] performs the
    /// same fold over a collected log). Counters with no event
    /// equivalent (fusion internals, high-water marks) stay inline in
    /// the engine.
    pub fn apply_event(&mut self, ev: &TraceEvent) {
        match &ev.kind {
            EventKind::CacheLookup {
                hit,
                depth,
                tokens_saved,
            } => {
                if *hit {
                    self.prefix_hits += 1;
                    self.prefix_tokens_saved += tokens_saved;
                    let bucket = ((*depth).max(1).ilog2() as usize).min(7);
                    self.prefix_depth_hist[bucket] += 1;
                } else {
                    self.prefix_misses += 1;
                }
            }
            EventKind::Preempted => self.preemptions += 1,
            EventKind::Deferred => self.deferred_steps += 1,
            EventKind::ForkEvicted => self.session_evictions += 1,
            EventKind::PrefixEvicted => self.prefix_evictions += 1,
            EventKind::Shed { .. } => self.shed_requests += 1,
            EventKind::IdleSkip { skipped } => self.idle_ticks_skipped += skipped,
            EventKind::GrammarPrune {
                considered,
                pruned,
                surviving,
            } => {
                self.grammar_considered += considered;
                self.grammar_pruned += pruned;
                self.grammar_surviving += surviving;
            }
            EventKind::Finished {
                tokens,
                proposed,
                accepted,
                ..
            } => {
                self.served_tokens += tokens;
                self.proposed_tokens += proposed;
                self.accepted_tokens += accepted;
            }
            EventKind::WorkerCrashed { .. } => self.crashes += 1,
            EventKind::WorkerRestarted => self.restarts += 1,
            EventKind::Migrated { replay_tokens, .. } => {
                self.migrations += 1;
                self.replayed_tokens += replay_tokens;
            }
            EventKind::Backpressure => self.backpressure_deferrals += 1,
            _ => {}
        }
    }

    /// Folds another engine's counters into these — the multi-worker
    /// merge used by [`serve_all_threaded`] and the streaming
    /// dispatcher ([`crate::dispatch`]). Additive counters sum;
    /// schedule-length and high-water counters (`ticks`, `peak_active`,
    /// `peak_resident_sessions`, `peak_resident_nodes`,
    /// `idle_ticks_skipped`) take the per-worker maximum, because
    /// workers run independent clocks, pools, and caches.
    pub fn merge(&mut self, other: &ServeStats) {
        self.ticks = self.ticks.max(other.ticks);
        self.peak_active = self.peak_active.max(other.peak_active);
        self.peak_resident_sessions = self
            .peak_resident_sessions
            .max(other.peak_resident_sessions);
        self.idle_ticks_skipped = self.idle_ticks_skipped.max(other.idle_ticks_skipped);
        self.fused_propose_positions += other.fused_propose_positions;
        self.fused_verify_nodes += other.fused_verify_nodes;
        self.fused_verify_calls += other.fused_verify_calls;
        self.local_verify_calls += other.local_verify_calls;
        self.preemptions += other.preemptions;
        self.served_tokens += other.served_tokens;
        self.session_evictions += other.session_evictions;
        self.proposed_tokens += other.proposed_tokens;
        self.accepted_tokens += other.accepted_tokens;
        self.shed_requests += other.shed_requests;
        self.deferred_steps += other.deferred_steps;
        self.prefix_hits += other.prefix_hits;
        self.prefix_misses += other.prefix_misses;
        self.prefix_tokens_saved += other.prefix_tokens_saved;
        self.prefix_evictions += other.prefix_evictions;
        self.grammar_considered += other.grammar_considered;
        self.grammar_pruned += other.grammar_pruned;
        self.grammar_surviving += other.grammar_surviving;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.migrations += other.migrations;
        self.replayed_tokens += other.replayed_tokens;
        self.backpressure_deferrals += other.backpressure_deferrals;
        self.peak_resident_nodes = self.peak_resident_nodes.max(other.peak_resident_nodes);
        for (mine, theirs) in self
            .prefix_depth_hist
            .iter_mut()
            .zip(&other.prefix_depth_hist)
        {
            *mine += theirs;
        }
    }
}

/// One request rejected by load-shedding admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedRequest {
    /// The request id.
    pub id: u64,
    /// Its arrival tick.
    pub arrival: u64,
    /// Its SLO deadline, if any (a shed deadline counts as missed in
    /// the SLO-attainment telemetry).
    pub deadline: Option<u64>,
    /// The tick at which it was shed.
    pub tick: u64,
}

/// The result of a serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// All finished requests, sorted by id.
    pub completions: Vec<Completion>,
    /// Requests rejected by load-shedding admission control, sorted by
    /// id (empty without [`ServeConfig::shed_depth`]).
    pub shed: Vec<ShedRequest>,
    /// Aggregate counters.
    pub stats: ServeStats,
}

impl ServeReport {
    /// The completion of request `id`, if it finished.
    pub fn completion(&self, id: u64) -> Option<&Completion> {
        self.completions.iter().find(|c| c.id == id)
    }

    /// Total generated tokens across all completions.
    pub fn total_tokens(&self) -> usize {
        self.completions.iter().map(|c| c.output.tokens.len()).sum()
    }
}

/// One admitted request.
struct Active<'m> {
    id: u64,
    /// The original submission, retained verbatim for crash migration:
    /// a crashed worker's in-flight requests are re-submitted from
    /// these (exact replay — deterministic decode regenerates the same
    /// tokens on the new worker).
    req: Request,
    stepper: Stepper<'m>,
    /// Decode budget (`max_tokens`), kept for the outstanding-cost
    /// load probe (the stepper consumes the config).
    budget: usize,
    submitted: u64,
    deadline: Option<u64>,
    admitted: u64,
    last_step: u64,
    max_gap: u64,
    preemptions: u32,
    /// Engine-relative wall seconds at which the request became visible.
    seen_secs: f64,
    /// Tick of every decoding step taken so far.
    step_ticks: Vec<u64>,
    /// Engine-relative wall seconds of the first committed token.
    first_commit_secs: Option<f64>,
    /// First tick at which the request may be scheduled: admission tick
    /// plus prompt-ingestion warmup ([`ServeConfig::ingest_rate`]; equal
    /// to the admission tick when ingestion is free or fully covered by
    /// a prefix fork / cache hit).
    warm_until: u64,
}

/// One queued (not yet active) request.
enum QueueEntry<'m> {
    /// Awaiting first admission, optionally with a forked, pre-ingested
    /// prompt-prefix session.
    Fresh {
        req: Request,
        session: Option<Box<dyn DecodeSession + 'm>>,
        /// Engine-relative wall seconds at submission/receipt.
        seen_secs: f64,
    },
    /// Preempted mid-generation; resumes by unparking (boxed: a parked
    /// request carries its whole stepper state).
    Parked(Box<Active<'m>>),
}

/// The serving engine; see the module docs for the tick anatomy.
pub struct ServeEngine<'m> {
    target: &'m dyn LanguageModel,
    /// Concrete model handle for fused cross-request execution; `None`
    /// serves correctly but without fusion.
    fused: Option<&'m MlpLm>,
    draft: Option<&'m dyn LanguageModel>,
    /// Token-byte oracle [`EngineChoice::GrammarTree`] requests
    /// constrain speculation with; `None` degrades them to plain
    /// syntax-aligned speculation.
    grammar: Option<&'m GrammarOracle>,
    /// The radix-tree prefix cache ([`ServeConfig::prefix_cache`]);
    /// `None` when disabled or the model cannot snapshot sessions.
    cache: Option<PrefixCache<'m>>,
    cfg: ServeConfig,
    /// The speculation policy every stepper (and the per-tick budget
    /// pass) consults; [`verispec_core::StaticPolicy`] by default.
    policy: &'m dyn SpecPolicy,
    scheduler: Scheduler,
    queue: Vec<QueueEntry<'m>>,
    /// Queued [`QueueEntry::Fresh`] entries currently holding a prefix
    /// fork — kept as a running count so residency checks on the
    /// per-submission hot path are O(1), not an O(queue) scan.
    queued_forks: usize,
    active: Vec<Active<'m>>,
    completions: Vec<Completion>,
    shed: Vec<ShedRequest>,
    tick: u64,
    stats: ServeStats,
    started: std::time::Instant,
    /// Structured-event receiver ([`verispec_trace::TraceSink`]); the
    /// no-op default reports itself disabled, so trace-only events are
    /// never even built and the pre-tracing hot path is preserved
    /// bit-for-bit.
    sink: &'m dyn TraceSink,
    /// This engine's fleet index, stamped on every emitted event (0
    /// for a standalone engine; the dispatcher labels its workers).
    worker: u32,
}

impl<'m> ServeEngine<'m> {
    /// An engine over a fusable model: cross-request propose/verify
    /// fusion is enabled (unless `cfg.fuse` is off).
    pub fn new(model: &'m MlpLm, cfg: ServeConfig) -> Self {
        let fused = cfg.fuse.then_some(model);
        Self::build(model, fused, cfg)
    }

    /// An engine over any [`LanguageModel`]: correct but unfused (every
    /// session verifies its own work) — the A/B baseline and the path
    /// for models without a fusable session representation.
    pub fn new_unfused(model: &'m dyn LanguageModel, cfg: ServeConfig) -> Self {
        Self::build(model, None, cfg)
    }

    fn build(target: &'m dyn LanguageModel, fused: Option<&'m MlpLm>, cfg: ServeConfig) -> Self {
        let scheduler = Scheduler::new(cfg.order, cfg.max_active, cfg.max_batch)
            .with_class_weights(&cfg.class_weights);
        let cache =
            (cfg.prefix_cache && target.snapshot_session().is_some()).then(PrefixCache::new);
        ServeEngine {
            target,
            fused,
            draft: None,
            grammar: None,
            cache,
            cfg,
            policy: &STATIC_POLICY,
            scheduler,
            queue: Vec::new(),
            queued_forks: 0,
            active: Vec::new(),
            completions: Vec::new(),
            shed: Vec::new(),
            tick: 0,
            stats: ServeStats::default(),
            started: std::time::Instant::now(),
            sink: &NOOP,
            worker: 0,
        }
    }

    /// Attaches a structured-event sink: every lifecycle transition —
    /// admission, cache walks, per-step shapes and acceptance,
    /// preemption, eviction, shedding, deadlines — is delivered as a
    /// tick-stamped [`verispec_trace::TraceEvent`]. Tracing is
    /// write-only and tick-space only, so attaching a sink never
    /// perturbs outputs, stats, or the tick schedule.
    pub fn with_sink(mut self, sink: &'m dyn TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Replaces the sink in place (the dispatcher wires workers after
    /// construction).
    pub(crate) fn set_sink(&mut self, sink: &'m dyn TraceSink) {
        self.sink = sink;
    }

    /// Sets the fleet index stamped on this engine's events.
    pub(crate) fn set_worker(&mut self, worker: u32) {
        self.worker = worker;
    }

    /// Whether trace-only events (those without a stats equivalent)
    /// should be built at all.
    fn traced(&self) -> bool {
        self.sink.enabled()
    }

    /// Builds an event stamped at the current tick, folds it into the
    /// aggregate stats ([`ServeStats::apply_event`] — the single place
    /// event-equivalent counters are maintained), and forwards it to
    /// the sink when one is attached.
    fn emit(&mut self, request: Option<u64>, kind: EventKind) {
        let ev = TraceEvent {
            tick: self.tick,
            worker: self.worker,
            request,
            kind,
        };
        self.stats.apply_event(&ev);
        if self.sink.enabled() {
            self.sink.record(ev);
        }
    }

    /// Replaces the speculation policy (default:
    /// [`verispec_core::StaticPolicy`], the configured shapes —
    /// bit-identical to the pre-policy engine). Every admitted
    /// request's stepper runs under it, and with a per-tick verify
    /// capacity ([`ServeConfig::tick_capacity`] or the policy's own
    /// [`verispec_core::SpecPolicy::tick_budget`]) the tick loop
    /// consults it to divide the budget across each tick's batch.
    pub fn with_policy(mut self, policy: &'m dyn SpecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches the draft model [`EngineChoice::DraftVerify`] requests
    /// verify against.
    pub fn with_draft(mut self, draft: &'m dyn LanguageModel) -> Self {
        self.draft = Some(draft);
        self
    }

    /// Attaches the grammar oracle [`EngineChoice::GrammarTree`]
    /// requests constrain their speculation with (typically
    /// [`verispec_grammar::GrammarOracle::from_tokenizer`], shared by
    /// every request). Without one, grammar requests run as plain
    /// syntax-aligned speculation — same commits, no propose-time
    /// pruning.
    pub fn with_grammar(mut self, oracle: &'m GrammarOracle) -> Self {
        self.grammar = Some(oracle);
        self
    }

    /// Seeds the prefix cache with a warm stem: `tokens` is ingested
    /// once and inserted into the trie, so every later prompt starting
    /// with it admits from a fork instead of re-ingesting the stem.
    /// This generalizes the hardcoded shared-preamble path — any stem,
    /// not just one — and is subject to the same cap-charged LRU
    /// eviction as organically cached prefixes. Returns `false` when
    /// the cache is disabled ([`ServeConfig::prefix_cache`]) or the
    /// model cannot snapshot sessions.
    pub fn warm_prefix(&mut self, tokens: &[verispec_lm::TokenId]) -> bool {
        if tokens.is_empty() || self.cache.is_none() {
            return false;
        }
        let target = self.target;
        let Some(mut work) = target.snapshot_session() else {
            return false;
        };
        work.append(tokens);
        let cache = self.cache.as_mut().expect("checked above");
        cache.insert(tokens, &mut |depth| {
            let mut snap = work.fork_snapshot();
            snap.truncate(depth);
            snap
        });
        self.note_resident();
        self.enforce_session_cap();
        true
    }

    /// Deepest cached-prefix length for `prompt` in this engine's
    /// prefix cache (0 when disabled) — the read-only probe the
    /// cache-aware routing policy
    /// ([`crate::dispatch::RoutePolicy::PrefixAffine`]) compares across
    /// workers.
    pub fn prefix_match_depth(&self, prompt: &[verispec_lm::TokenId]) -> usize {
        self.cache.as_ref().map_or(0, |c| c.match_depth(prompt))
    }

    fn now_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Enqueues a request. Shared-prefix reuse happens at admission via
    /// the prefix cache ([`ServeConfig::prefix_cache`] /
    /// [`ServeEngine::warm_prefix`]) or explicitly via
    /// [`ServeEngine::submit_with_session`]; `submit` itself carries no
    /// session.
    pub fn submit(&mut self, req: Request) {
        let session = None;
        let seen_secs = self.now_secs();
        if self.traced() {
            self.emit(
                Some(req.id),
                EventKind::Submitted {
                    arrival: req.arrival,
                    prompt_tokens: req.prompt.len(),
                    deadline: req.deadline,
                },
            );
        }
        self.queued_forks += usize::from(session.is_some());
        self.queue.push(QueueEntry::Fresh {
            req,
            session,
            seen_secs,
        });
        self.note_resident();
        self.enforce_session_cap();
    }

    /// Enqueues a request whose prompt prefix is already ingested in
    /// `session` (typically a [`DecodeSession::fork`] of one shared
    /// prefix session); only the prompt remainder is appended at
    /// admission.
    ///
    /// # Panics
    ///
    /// Panics if the session's context is not a prefix of `req.prompt`.
    pub fn submit_with_session(&mut self, req: Request, session: Box<dyn DecodeSession + 'm>) {
        assert!(
            req.prompt.starts_with(session.tokens()),
            "prefix session context must be a prefix of the request prompt"
        );
        let seen_secs = self.now_secs();
        if self.traced() {
            self.emit(
                Some(req.id),
                EventKind::Submitted {
                    arrival: req.arrival,
                    prompt_tokens: req.prompt.len(),
                    deadline: req.deadline,
                },
            );
        }
        self.queued_forks += 1;
        self.queue.push(QueueEntry::Fresh {
            req,
            session: Some(session),
            seen_secs,
        });
        self.note_resident();
        self.enforce_session_cap();
    }

    /// Pulls every request currently waiting in `rx` into the admission
    /// queue — the streaming-admission entry point the serve loop
    /// consults each tick, so open-loop arrivals join mid-flight
    /// instead of all-at-front. Returns `(received, disconnected)`;
    /// once the channel reports disconnected the stream is drained for
    /// good.
    pub fn drain_arrivals(&mut self, rx: &std::sync::mpsc::Receiver<Request>) -> (usize, bool) {
        use std::sync::mpsc::TryRecvError;
        let mut received = 0usize;
        let disconnected = loop {
            match rx.try_recv() {
                Ok(req) => {
                    self.submit(req);
                    received += 1;
                }
                Err(TryRecvError::Empty) => break false,
                Err(TryRecvError::Disconnected) => break true,
            }
        };
        (received, disconnected)
    }

    /// Requests not yet completed (queued + active).
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    /// Whether any request is still queued or active.
    pub fn has_work(&self) -> bool {
        !(self.queue.is_empty() && self.active.is_empty())
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The engine's scheduler clock: ticks executed, including any
    /// idle fast-forward jumps. The dispatcher paces arrival routing
    /// by the fleet's most-advanced clock.
    pub fn clock(&self) -> u64 {
        self.tick
    }

    /// Ready-depth load probe: every request this engine still owes
    /// work to — active steppers plus queued entries (fresh arrivals
    /// and parked preemptees alike; future arrivals count too, they are
    /// committed work). The join-shortest-queue routing policy
    /// ([`crate::dispatch::RoutePolicy::JoinShortestQueue`]) balances
    /// on this.
    pub fn ready_depth(&self) -> usize {
        self.in_flight()
    }

    /// Outstanding candidate-token cost probe: an upper bound on the
    /// verify positions this engine still has to pay, denominated in
    /// [`SpecShape::step_cost`] units — for each in-flight request, its
    /// remaining token budget times the per-step cost of the shape the
    /// speculation policy would buy it right now (active and parked
    /// requests are priced with their own acceptance history, queued
    /// fresh ones with an empty one; an NTP step costs 1). "Upper
    /// bound" because accepted speculation commits several tokens per
    /// step. The join-least-loaded routing policy
    /// ([`crate::dispatch::RoutePolicy::LeastLoaded`]) balances on
    /// this, so a worker hoarding wide-tree long-budget requests looks
    /// heavier than one holding the same *count* of NTP shorties.
    pub fn outstanding_cost(&self) -> usize {
        let priced = |base: Option<SpecShape>, history: &AcceptHistory, remaining: usize| {
            let per_step = base.map_or(1, |b| {
                self.policy
                    .shape(&ShapeQuery {
                        base: &b,
                        history,
                        cap: None,
                    })
                    .step_cost()
            });
            remaining * per_step
        };
        let active_cost = |a: &Active<'m>| {
            priced(
                a.stepper.base_shape(),
                a.stepper.history(),
                a.budget.saturating_sub(a.stepper.generated()),
            )
        };
        let fresh_history = AcceptHistory::default();
        let mut cost = 0usize;
        for a in &self.active {
            cost += active_cost(a);
        }
        for entry in &self.queue {
            cost += match entry {
                QueueEntry::Fresh { req, .. } => priced(
                    self.request_base_shape(req),
                    &fresh_history,
                    req.cfg.max_tokens,
                ),
                QueueEntry::Parked(a) => active_cost(a),
            };
        }
        cost
    }

    /// The configured [`SpecShape`] a request will run under once
    /// admitted, derived without building a stepper (the queued-request
    /// half of [`ServeEngine::outstanding_cost`]): `None` for NTP,
    /// mirroring [`Stepper::base_shape`].
    fn request_base_shape(&self, req: &Request) -> Option<SpecShape> {
        let n_heads = self.target.n_extra_heads();
        match &req.engine {
            EngineChoice::Ntp => None,
            EngineChoice::DraftVerify { gamma } => Some(SpecShape::Draft { gamma: *gamma }),
            _ => Some(match req.engine.decode_config(&req.cfg).tree {
                None => SpecShape::Chain { depth: n_heads },
                Some(widths) => SpecShape::Tree {
                    widths,
                    depth: n_heads,
                },
            }),
        }
    }

    /// Resident sessions right now: active steppers, queued
    /// pre-ingested prefix forks, and prefix-cache snapshots (parked
    /// steppers hold none — parking drops their sessions). O(1) via the
    /// running fork count and the cache's resident counter.
    fn resident_sessions(&self) -> usize {
        debug_assert_eq!(
            self.queued_forks,
            self.queue
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        QueueEntry::Fresh {
                            session: Some(_),
                            ..
                        }
                    )
                })
                .count(),
            "queued-fork counter out of sync with the queue"
        );
        self.active.len() + self.queued_forks + self.cache.as_ref().map_or(0, PrefixCache::resident)
    }

    fn note_resident(&mut self) {
        self.stats.peak_resident_sessions = self
            .stats
            .peak_resident_sessions
            .max(self.resident_sessions());
        if let Some(cache) = &self.cache {
            self.stats.peak_resident_nodes = self.stats.peak_resident_nodes.max(cache.resident());
        }
    }

    /// Enforces [`ServeConfig::session_cap`]: while over budget,
    /// prefix-cache snapshots are evicted first (LRU leaves — they are
    /// speculative future value, rebuilt on a later miss), then idle
    /// prefix forks are dropped least-recently-submitted first (queue
    /// order). Both paths are exact-replay eviction — the request
    /// is admitted later from a fresh session replaying its full
    /// prompt, which reconstructs the dropped state exactly (sessions
    /// are pure functions of their token context), so outputs are
    /// untouched. Active sessions are never evicted here; the cap
    /// squeezes the idle pool that unbounded streaming arrivals grow.
    fn enforce_session_cap(&mut self) {
        let Some(cap) = self.cfg.session_cap else {
            return;
        };
        let mut over = self.resident_sessions().saturating_sub(cap.max(1));
        while over > 0 {
            let evicted = match self.cache.as_mut() {
                Some(cache) => cache.evict_lru(),
                None => false,
            };
            if !evicted {
                break;
            }
            self.emit(None, EventKind::PrefixEvicted);
            over -= 1;
        }
        if over == 0 {
            return;
        }
        let mut dropped: Vec<u64> = Vec::new();
        for entry in self.queue.iter_mut() {
            if over == 0 {
                break;
            }
            if let QueueEntry::Fresh { req, session, .. } = entry {
                if session.is_some() {
                    *session = None;
                    self.queued_forks -= 1;
                    dropped.push(req.id);
                    over -= 1;
                }
            }
        }
        for id in dropped {
            self.emit(Some(id), EventKind::ForkEvicted);
        }
    }

    /// Removes queue entry `pos`, keeping the fork counter in sync.
    fn take_queued(&mut self, pos: usize) -> QueueEntry<'m> {
        let entry = self.queue.remove(pos);
        if matches!(
            entry,
            QueueEntry::Fresh {
                session: Some(_),
                ..
            }
        ) {
            self.queued_forks -= 1;
        }
        entry
    }

    fn make_stepper(
        &self,
        req: &Request,
        session: Option<Box<dyn DecodeSession + 'm>>,
    ) -> Stepper<'m> {
        let session = session.unwrap_or_else(|| self.target.session());
        let ingested = session.tokens().len();
        debug_assert!(req.prompt.starts_with(session.tokens()));
        let rest = &req.prompt[ingested..];
        match &req.engine {
            EngineChoice::Ntp => Stepper::ntp_from_session(
                self.target,
                session,
                rest,
                req.engine.decode_config(&req.cfg),
            ),
            EngineChoice::DraftVerify { .. } => {
                let draft = self
                    .draft
                    .expect("DraftVerify requests need ServeEngine::with_draft");
                let dcfg = req
                    .engine
                    .draft_config(&req.cfg)
                    .expect("draft engine resolves a draft config");
                Stepper::draft_verify_from_session(self.target, draft, session, rest, dcfg)
            }
            EngineChoice::GrammarTree { .. } => match self.grammar {
                Some(oracle) => Stepper::grammar_speculative_from_session(
                    self.target,
                    oracle,
                    session,
                    rest,
                    req.engine.decode_config(&req.cfg),
                ),
                // Documented degradation: without an oracle the request
                // runs as plain syntax-aligned speculation.
                None => Stepper::speculative_from_session(
                    self.target,
                    session,
                    rest,
                    req.engine.decode_config(&req.cfg),
                ),
            },
            _ => Stepper::speculative_from_session(
                self.target,
                session,
                rest,
                req.engine.decode_config(&req.cfg),
            ),
        }
        .with_policy(self.policy)
    }

    /// Admission through the prefix cache: walk to the deepest cached
    /// prefix, fork its snapshot, append only the unmatched suffix, and
    /// insert the prompt back into the trie (snapshotting the
    /// divergence point and the full prompt) so later stem-sharing
    /// requests hit. Returns the fully-ingested session plus the number
    /// of prompt tokens the cache already held — the ingestion the hit
    /// saved. `(None, 0)` when the cache is disabled.
    fn cache_admit(&mut self, req: &Request) -> (Option<Box<dyn DecodeSession + 'm>>, usize) {
        if self.cache.is_none() {
            return (None, 0);
        }
        let target = self.target;
        let looked_up = self
            .cache
            .as_mut()
            .expect("checked above")
            .lookup(&req.prompt);
        let matched = looked_up.as_ref().map_or(0, |&(_, depth)| depth);
        self.emit(
            Some(req.id),
            EventKind::CacheLookup {
                hit: looked_up.is_some(),
                depth: matched,
                tokens_saved: matched,
            },
        );
        let mut work = match looked_up {
            Some((fork, _)) => fork,
            None => {
                let Some(fresh) = target.snapshot_session() else {
                    return (None, 0);
                };
                fresh
            }
        };
        work.append(&req.prompt[matched..]);
        let cache = self.cache.as_mut().expect("checked above");
        cache.insert(&req.prompt, &mut |depth| {
            let mut snap = work.fork_snapshot();
            snap.truncate(depth);
            snap
        });
        let work: Box<dyn DecodeSession + 'm> = work;
        (Some(work), matched)
    }

    /// Warmup ticks a fresh admission owes for ingesting `suffix`
    /// prompt tokens at [`ServeConfig::ingest_rate`] (0 when ingestion
    /// is free — the default — or the suffix fits one tick).
    fn warmup_ticks(&self, suffix: usize) -> u64 {
        self.cfg.ingest_rate.map_or(0, |rate| {
            (suffix as u64)
                .div_ceil(rate.max(1) as u64)
                .saturating_sub(1)
        })
    }

    fn admit(&mut self, entry: QueueEntry<'m>) {
        match entry {
            QueueEntry::Fresh {
                req,
                session,
                seen_secs,
            } => {
                let (session, ingested) = match session {
                    Some(s) => {
                        let n = s.tokens().len();
                        (Some(s), n)
                    }
                    None => self.cache_admit(&req),
                };
                let warm_until = self.tick + self.warmup_ticks(req.prompt.len() - ingested);
                if self.traced() {
                    self.emit(
                        Some(req.id),
                        EventKind::Admitted {
                            queued_ticks: self.tick.saturating_sub(req.arrival),
                            warm_until,
                        },
                    );
                }
                let stepper = self.make_stepper(&req, session);
                self.active.push(Active {
                    id: req.id,
                    budget: req.cfg.max_tokens,
                    submitted: req.arrival,
                    deadline: req.deadline,
                    req,
                    stepper,
                    admitted: self.tick,
                    last_step: self.tick,
                    max_gap: 0,
                    preemptions: 0,
                    seen_secs,
                    step_ticks: Vec::new(),
                    first_commit_secs: None,
                    warm_until,
                });
                self.note_resident();
                self.enforce_session_cap();
            }
            QueueEntry::Parked(mut a) => {
                a.stepper.unpark();
                a.last_step = self.tick;
                if self.traced() {
                    self.emit(Some(a.id), EventKind::Resumed);
                }
                self.active.push(*a);
            }
        }
    }

    fn entry_ready(&self, entry: &QueueEntry<'m>) -> bool {
        match entry {
            QueueEntry::Fresh { req, .. } => req.arrival <= self.tick,
            QueueEntry::Parked(_) => true,
        }
    }

    fn admit_ready(&mut self) {
        while self.active.len() < self.cfg.max_active {
            let Some(pos) = (0..self.queue.len()).find(|&i| self.entry_ready(&self.queue[i]))
            else {
                break;
            };
            let entry = self.take_queued(pos);
            self.admit(entry);
        }
    }

    /// Rollback-aware preemption: when an arrived request has waited
    /// past `preempt_wait` with the pool full, the most-advanced active
    /// request (never one already preempted — bounds ping-pong) is
    /// parked to the queue and the starved request takes its slot.
    fn maybe_preempt(&mut self) {
        let Some(wait) = self.cfg.preempt_wait else {
            return;
        };
        if self.active.len() < self.cfg.max_active {
            return;
        }
        let starved = (0..self.queue.len()).find(|&i| match &self.queue[i] {
            QueueEntry::Fresh { req, .. } => {
                req.arrival <= self.tick && self.tick - req.arrival >= wait
            }
            QueueEntry::Parked(_) => false,
        });
        let Some(pos) = starved else {
            return;
        };
        let victim = self
            .active
            .iter()
            .enumerate()
            .filter(|(_, a)| a.preemptions == 0 && a.warm_until <= self.tick)
            .max_by_key(|(_, a)| (a.stepper.generated(), a.id))
            .map(|(i, _)| i);
        let Some(v) = victim else {
            return;
        };
        let mut parked = self.active.swap_remove(v);
        parked.stepper.park();
        parked.preemptions += 1;
        self.emit(Some(parked.id), EventKind::Preempted);
        self.queue.push(QueueEntry::Parked(Box::new(parked)));
        let entry = self.take_queued(pos);
        self.admit(entry);
    }

    fn finish(&mut self, a: Active<'m>) {
        let draft_stats = a.stepper.draft_stats();
        let (proposed_tokens, accepted_tokens) = {
            let h = a.stepper.history();
            (h.speculated(), h.accepted())
        };
        self.emit(
            Some(a.id),
            EventKind::Finished {
                tokens: a.stepper.generated(),
                steps: a.step_ticks.len(),
                proposed: proposed_tokens,
                accepted: accepted_tokens,
            },
        );
        if self.traced() {
            if let Some(deadline) = a.deadline {
                self.emit(
                    Some(a.id),
                    EventKind::Deadline {
                        deadline,
                        met: self.tick <= deadline,
                    },
                );
            }
        }
        let output = a.stepper.into_output();
        debug_assert_eq!(
            a.step_ticks.len(),
            output.trace.len(),
            "every decoding step commits on some tick"
        );
        self.completions.push(Completion {
            id: a.id,
            output,
            draft_stats,
            submitted: a.submitted,
            admitted: a.admitted,
            finished: self.tick,
            max_service_gap: a.max_gap,
            preemptions: a.preemptions,
            step_ticks: a.step_ticks,
            seen_secs: a.seen_secs,
            first_token_secs: a.first_commit_secs,
            finished_secs: self.started.elapsed().as_secs_f64(),
            deadline: a.deadline,
            proposed_tokens,
            accepted_tokens,
        });
    }

    /// Load-shedding admission control ([`ServeConfig::shed_depth`]):
    /// after admission, if more *ready* fresh requests are still
    /// waiting than the configured depth, the newest arrivals are
    /// rejected outright (LIFO drop — the freshest request has waited
    /// least and loses least). Parked (preempted) requests are never
    /// shed: their work is already partially paid for. The decision is
    /// a pure function of the tick schedule, so batch and streaming
    /// runs shed the same requests.
    fn shed_ready_overflow(&mut self) {
        let Some(depth) = self.cfg.shed_depth else {
            return;
        };
        let mut ready: Vec<(u64, u64, usize)> = self
            .queue
            .iter()
            .enumerate()
            .filter_map(|(idx, e)| match e {
                QueueEntry::Fresh { req, .. } if req.arrival <= self.tick => {
                    Some((req.arrival, req.id, idx))
                }
                _ => None,
            })
            .collect();
        if ready.len() <= depth {
            return;
        }
        // Oldest arrivals (ties by id) keep their place; everything
        // past the depth is the newest overflow. Remove by descending
        // queue index so earlier removals don't shift later ones.
        ready.sort_unstable();
        let mut overflow: Vec<usize> = ready[depth..].iter().map(|&(_, _, idx)| idx).collect();
        overflow.sort_unstable_by(|a, b| b.cmp(a));
        for idx in overflow {
            let QueueEntry::Fresh { req, .. } = self.take_queued(idx) else {
                unreachable!("only fresh entries are shed");
            };
            self.emit(
                Some(req.id),
                EventKind::Shed {
                    arrival: req.arrival,
                    deadline: req.deadline,
                },
            );
            self.shed.push(ShedRequest {
                id: req.id,
                arrival: req.arrival,
                deadline: req.deadline,
                tick: self.tick,
            });
        }
    }

    /// Divides the tick's verify capacity across the scheduler's
    /// selection — the speculation-policy hook of the tick loop.
    ///
    /// Without a capacity ([`ServeConfig::tick_capacity`] and the
    /// policy's [`SpecPolicy::tick_budget`] both `None`) every selected
    /// request steps and each stepper consults the policy itself at
    /// propose time — the pre-policy behavior under [`STATIC_POLICY`].
    ///
    /// With a capacity, the engine walks the selection order asking the
    /// policy for each request's shape with the *remaining* budget as
    /// its cap, pins the answer on the stepper (so budget accounting
    /// and the built candidate paths agree exactly), and defers
    /// requests whose shape does not fit. The head of the order always
    /// steps even on overrun — forced aging picks sort first, so the
    /// scheduler's no-starvation bound survives budget pressure.
    fn divide_tick_capacity(&mut self, selected: Vec<usize>) -> Vec<usize> {
        let Some(capacity) = self.cfg.tick_capacity.or(self.policy.tick_budget()) else {
            return selected;
        };
        let policy = self.policy;
        let capacity = capacity.max(1);
        let mut remaining = capacity;
        let mut stepped = Vec::with_capacity(selected.len());
        for (pos, &i) in selected.iter().enumerate() {
            // NTP steppers have no shape to decide and cost one verify
            // position; speculative ones get the policy's decision for
            // the remaining budget.
            let stepper = &self.active[i].stepper;
            let shape = stepper.base_shape().map(|base| {
                policy.shape(&ShapeQuery {
                    base: &base,
                    history: stepper.history(),
                    cap: Some(remaining),
                })
            });
            let cost = shape.as_ref().map_or(1, SpecShape::step_cost);
            if pos > 0 && cost > remaining {
                let id = self.active[i].id;
                self.emit(Some(id), EventKind::Deferred);
                continue;
            }
            if let Some(shape) = shape {
                self.active[i].stepper.pin_shape(shape);
            }
            remaining = remaining.saturating_sub(cost);
            stepped.push(i);
        }
        if self.traced() {
            self.emit(
                None,
                EventKind::TickBudget {
                    capacity,
                    spent: capacity - remaining,
                    deferred: selected.len() - stepped.len(),
                },
            );
        }
        stepped
    }

    /// Idle fast-forward: with nothing active and nothing admissible
    /// before some future arrival tick, jump the clock there instead of
    /// burning empty ticks one by one (open-loop workloads can be
    /// sparse). Parked entries are always admissible, so the jump only
    /// happens when every queue entry is a future fresh arrival.
    fn fast_forward_idle(&mut self) {
        if !self.active.is_empty() || self.queue.is_empty() {
            return;
        }
        let next = self
            .queue
            .iter()
            .map(|e| match e {
                QueueEntry::Fresh { req, .. } => req.arrival,
                QueueEntry::Parked(_) => 0,
            })
            .min()
            .expect("queue is non-empty");
        if next > self.tick + 1 {
            let skipped = next - 1 - self.tick;
            self.tick = next - 1;
            self.emit(None, EventKind::IdleSkip { skipped });
        }
    }

    /// Runs one scheduler tick; returns `false` once no work remains.
    pub fn tick(&mut self, cost: &GpuCostModel) -> bool {
        if !self.has_work() {
            return false;
        }
        self.run_tick(cost);
        self.has_work()
    }

    /// The tick body: admission, selection, fused propose/verify,
    /// commit. Requires work to exist.
    fn run_tick(&mut self, cost: &GpuCostModel) {
        self.enforce_session_cap();
        self.note_resident();
        self.fast_forward_idle();
        self.tick += 1;
        self.stats.ticks += 1;
        self.admit_ready();
        self.maybe_preempt();
        self.shed_ready_overflow();
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());

        // Requests still ingesting their prompt (paced by
        // `ingest_rate`) occupy a slot but cannot decode yet; bumping
        // `last_step` keeps the scheduler's aging/starvation machinery
        // from counting warmup ticks as scheduler-inflicted gaps.
        for a in &mut self.active {
            if a.warm_until > self.tick {
                a.last_step = self.tick;
            }
        }

        let views: Vec<ActiveView> = self
            .active
            .iter()
            .map(|a| ActiveView {
                id: a.id,
                last_step: a.last_step,
                admitted: a.admitted,
                generated: a.stepper.generated(),
                deadline: a.deadline,
                class: a.req.class,
            })
            .collect();
        let mut selected = self.scheduler.select(&views, self.tick, self.cfg.max_batch);
        // Filter *after* selection (indices align with `self.active`;
        // filtering `views` would misalign them): warming requests give
        // their batch slot to decodable neighbors.
        selected.retain(|&i| self.active[i].warm_until <= self.tick);
        let stepped = self.divide_tick_capacity(selected);
        if self.traced() && !stepped.is_empty() {
            let ids: Vec<u64> = stepped.iter().map(|&i| self.active[i].id).collect();
            self.emit(None, EventKind::Batch { requests: ids });
        }
        for &i in &stepped {
            let a = &mut self.active[i];
            a.max_gap = a.max_gap.max(self.tick - a.last_step);
            a.last_step = self.tick;
        }

        // Fused propose: one batched trunk + per-head pass serves every
        // MEDUSA-style member of the batch. The batched kernel now
        // selects its accumulator lane width per batch size
        // (`verispec_lm::matrix::lanes_for`: 4 lanes up to batch 4, 8
        // up to 8, 16 beyond), so a 2-candidate fusion pads to 4 lanes
        // instead of 8 and cross-request propose fusion pays from the
        // 2–8 batch range this engine actually serves; only a lone
        // candidate still takes the cached per-session path.
        const MIN_FUSED_PROPOSE: usize = 2;
        let mut pre: HashMap<usize, Vec<Vec<f32>>> = HashMap::new();
        if let Some(model) = self.fused {
            // Count candidates before gathering, so small batches never
            // pay the embedding clones just to throw them away.
            let candidates = stepped
                .iter()
                .filter(|&&i| self.active[i].stepper.wants_multi_logits())
                .count();
            if candidates >= MIN_FUSED_PROPOSE {
                let mut idxs = Vec::with_capacity(candidates);
                let mut xs: Vec<Vec<f32>> = Vec::with_capacity(candidates);
                for &i in &stepped {
                    let st = &mut self.active[i].stepper;
                    if st.wants_multi_logits() {
                        if let Some(x) = st.embed_plan() {
                            idxs.push(i);
                            xs.push(x);
                        }
                    }
                }
                self.stats.fused_propose_positions += xs.len();
                for (i, logits) in idxs.into_iter().zip(multi_logits_many(model, &xs)) {
                    pre.insert(i, logits);
                }
            }
        }
        let mut phases: Vec<(usize, Phase)> = Vec::with_capacity(stepped.len());
        for &i in &stepped {
            let logits = pre.remove(&i);
            let phase = self.active[i].stepper.propose(logits);
            phases.push((i, phase));
        }

        // Fused verify: every member's candidate tree in one pass.
        let mut scored: HashMap<usize, Vec<Vec<Vec<f32>>>> = HashMap::new();
        let mut plan_idx: Vec<usize> = Vec::new();
        let mut plans: Vec<VerifyPlan> = Vec::new();
        for &(i, phase) in &phases {
            if matches!(phase, Phase::Verify { .. }) {
                let st = &mut self.active[i].stepper;
                match self.fused.and_then(|_| st.verify_plan()) {
                    Some(plan) => {
                        plan_idx.push(i);
                        plans.push(plan);
                    }
                    None => {
                        self.stats.local_verify_calls += 1;
                        scored.insert(i, st.verify_local());
                    }
                }
            }
        }
        if !plans.is_empty() {
            self.stats.fused_verify_calls += 1;
            self.stats.fused_verify_nodes += plans.iter().map(VerifyPlan::n_nodes).sum::<usize>();
            let model = self.fused.expect("plans only exist with a fused model");
            for (i, result) in plan_idx.into_iter().zip(verify_many(model, &plans)) {
                scored.insert(i, result);
            }
        }

        // Commit: acceptance, rollback, clock — all request-local.
        // Every non-Done phase commits at least one token (NTP/draft
        // always commit; speculative commits at least its base token),
        // so the commit tick doubles as the inter-token telemetry
        // timestamp.
        for (i, phase) in phases {
            match phase {
                Phase::Done => continue,
                Phase::Commit => self.active[i].stepper.commit(Vec::new(), cost),
                Phase::Verify { .. } => {
                    let s = scored.remove(&i).expect("scored in verify phase");
                    self.active[i].stepper.commit(s, cost);
                }
            }
            let now = self.started.elapsed().as_secs_f64();
            let a = &mut self.active[i];
            a.step_ticks.push(self.tick);
            a.first_commit_secs.get_or_insert(now);
            // Grammar prune accounting is cheap (three counters) and
            // has a stats equivalent, so it is emitted unconditionally
            // — like every stats-backed event — not gated on tracing.
            if let Some(rec) = self.active[i].stepper.last_prune() {
                let id = self.active[i].id;
                self.emit(
                    Some(id),
                    EventKind::GrammarPrune {
                        considered: rec.considered,
                        pruned: rec.pruned,
                        surviving: rec.surviving,
                    },
                );
            }
            if self.traced() {
                let a = &self.active[i];
                let id = a.id;
                let shape = a.stepper.last_shape().cloned();
                let tr = a
                    .stepper
                    .output()
                    .trace
                    .last()
                    .expect("commit pushes a step trace");
                let (proposed, accepted, truncated, committed) =
                    (tr.speculated, tr.accepted, tr.truncated, tr.committed.len());
                self.emit(
                    Some(id),
                    EventKind::Step {
                        shape,
                        proposed,
                        accepted,
                        truncated,
                        committed,
                    },
                );
            }
        }

        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].stepper.done() {
                let a = self.active.swap_remove(i);
                self.finish(a);
            } else {
                i += 1;
            }
        }
    }

    /// Finalizes this worker's report without driving it further — the
    /// dispatcher's merge hook ([`crate::dispatch::Dispatcher`] drives
    /// ticks itself and collects each worker's completions at the end).
    pub(crate) fn into_report_parts(self) -> ServeReport {
        self.into_report()
    }

    /// Jumps the scheduler clock forward to `to` (no-op when already
    /// past it). Fault injection uses this to keep virtual-time
    /// causality: a replacement engine built after a crash — and a
    /// restarted worker — starts at the fault tick, not at zero, so
    /// migrated requests re-serve at ticks `>=` the crash and
    /// queue-delay accounting keeps counting from the original arrival.
    pub(crate) fn advance_clock(&mut self, to: u64) {
        self.tick = self.tick.max(to);
    }

    /// Kills this engine: consumes it mid-run, returning the report of
    /// everything it *finished* before dying plus the stranded work —
    /// every in-flight (active or parked) and queued request, paired
    /// with the number of tokens it had already generated (the decode
    /// work the crash threw away). The caller re-routes the stranded
    /// requests to surviving workers, where exact replay — resubmitting
    /// the original [`Request`] to a fresh deterministic engine —
    /// regenerates their token streams identically, so fleet outputs
    /// are invariant under crashes.
    ///
    /// Stranded requests are returned sorted by id: active requests,
    /// parked preemptees, and queued arrivals collapse into one
    /// deterministic migration order regardless of this engine's
    /// internal pool state at the moment of death.
    pub(crate) fn crash(mut self) -> (ServeReport, Vec<(Request, usize)>) {
        let mut stranded: Vec<(Request, usize)> = Vec::new();
        for a in self.active.drain(..) {
            let generated = a.stepper.generated();
            stranded.push((a.req, generated));
        }
        for entry in std::mem::take(&mut self.queue) {
            match entry {
                QueueEntry::Fresh { req, .. } => stranded.push((req, 0)),
                QueueEntry::Parked(a) => {
                    let generated = a.stepper.generated();
                    stranded.push((a.req, generated));
                }
            }
        }
        self.queued_forks = 0;
        stranded.sort_by_key(|(req, _)| req.id);
        (self.into_report(), stranded)
    }

    fn into_report(mut self) -> ServeReport {
        self.completions.sort_by_key(|c| c.id);
        self.shed.sort_by_key(|s| s.id);
        ServeReport {
            completions: self.completions,
            shed: self.shed,
            stats: self.stats,
        }
    }

    /// Drives the tick loop until every submitted request completes.
    pub fn run(mut self, cost: &GpuCostModel) -> ServeReport {
        while self.tick(cost) {}
        self.into_report()
    }

    /// Drives the engine against a live arrival channel: each loop
    /// iteration drains newly arrived requests into the admission queue
    /// ([`ServeEngine::drain_arrivals`]) and runs one tick; when idle
    /// with the stream still open it blocks for the next arrival
    /// instead of spinning. Returns once the channel disconnects and
    /// every drained request has completed.
    ///
    /// Per-request outputs are bit-identical to batch
    /// [`ServeEngine::run`] regardless of send timing (serving never
    /// changes semantics), and when every request is sent before its
    /// arrival tick is processed the whole tick schedule — admission,
    /// queueing delays, commit ticks — matches the batch run too (the
    /// property `verispec-load`'s streaming proptest pins).
    pub fn run_streaming(
        mut self,
        arrivals: std::sync::mpsc::Receiver<Request>,
        cost: &GpuCostModel,
    ) -> ServeReport {
        let mut open = true;
        loop {
            if open {
                let (_, disconnected) = self.drain_arrivals(&arrivals);
                open = !disconnected;
            }
            if self.has_work() {
                self.run_tick(cost);
            } else if open {
                // Idle with the stream open: block for the next arrival.
                match arrivals.recv() {
                    Ok(req) => self.submit(req),
                    Err(_) => open = false,
                }
            } else {
                break;
            }
        }
        self.into_report()
    }
}

/// Serves `requests` to completion on one engine (single worker).
pub fn serve_all(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
) -> ServeReport {
    let mut engine = ServeEngine::new(model, cfg.clone());
    if let Some(d) = draft {
        engine = engine.with_draft(d);
    }
    for req in requests {
        engine.submit(req);
    }
    engine.run(cost)
}

/// The open-loop sibling of [`serve_all`]: serves requests as they
/// arrive on `arrivals` (see [`ServeEngine::run_streaming`]). Shared
/// prompt prefixes are reused through the engine's radix-tree prefix
/// cache ([`ServeConfig::prefix_cache`] +
/// [`ServeEngine::warm_prefix`]), which subsumed the retired
/// shared-prefix-session parameter this function used to take.
pub fn serve_streaming<'m>(
    model: &'m MlpLm,
    draft: Option<&'m dyn LanguageModel>,
    arrivals: std::sync::mpsc::Receiver<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
) -> ServeReport {
    let mut engine = ServeEngine::new(model, cfg.clone());
    if let Some(d) = draft {
        engine = engine.with_draft(d);
    }
    engine.run_streaming(arrivals, cost)
}

/// The multi-core variant: requests are sharded round-robin across
/// `workers` engines, each running on its own OS thread. Per-request
/// outputs are identical to [`serve_all`] — each request is processed
/// by exactly one deterministic engine. Merged stats sum the counters;
/// `ticks` and `peak_active` take the per-worker maximum.
///
/// This is a thin wrapper over the fleet's one threaded execution
/// path, [`crate::threaded::ThreadedDispatcher`]'s batch drive under
/// [`crate::RoutePolicy::RoundRobin`]: cyclic routing over the
/// in-order submission stream reproduces the old bespoke `i % workers`
/// sharding exactly, so each worker's engine receives the same shard
/// in the same relative order.
pub fn serve_all_threaded(
    model: &MlpLm,
    draft: Option<&(dyn LanguageModel + Sync)>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
    workers: usize,
) -> ServeReport {
    use crate::dispatch::{DispatchConfig, DispatchReport, RoutePolicy};
    use crate::threaded::ThreadedDispatcher;
    let mut td = ThreadedDispatcher::new(
        model,
        cfg.clone(),
        DispatchConfig::new(workers, RoutePolicy::RoundRobin),
    );
    if let Some(d) = draft {
        td = td.with_draft(d);
    }
    let DispatchReport {
        completions,
        shed,
        stats,
        ..
    } = td.run_threaded(requests, cost).report;
    ServeReport {
        completions,
        shed,
        stats,
    }
}
