//! The radix-tree prefix cache: copy-on-write session snapshots over
//! arbitrary token prefixes.
//!
//! vLLM-style automatic prefix caching rebuilt on this repo's
//! exact-replay semantics. The trie maps token prefixes to frozen
//! [`SnapshotSession`] snapshots; admission walks it to the **deepest
//! match**, forks a full-lifetime session from that node
//! ([`SnapshotSession::fork_snapshot`]), and appends only the unmatched
//! suffix — O(prompt) ingestion becomes O(suffix) on a hit:
//!
//! ```text
//!            (root)
//!              │ [5,6]              ── shared stem, snapshot ▣
//!            ▣ stem
//!        ┌─────┴──────┐
//!        │ [7,9]      │ [8]        ── per-prompt suffixes
//!      ▣ leaf       ▣ leaf           (leaves always hold snapshots)
//! ```
//!
//! * **Insert-on-miss** populates the trie: edges split on divergence
//!   (the split point is exactly a shared stem, so it gets its own
//!   snapshot — a full-prompt leaf alone would only ever match
//!   identical or extending prompts).
//! * **Copy-on-write**: forking clones the snapshot's cached state;
//!   parent and child diverge independently, so a cached stem serves
//!   any number of concurrent generations.
//! * **Eviction is exact-replay** (the PR-3 semantics): the LRU
//!   snapshot-holding *leaf* is dropped whole; a later miss rebuilds
//!   from the full prompt, and because sessions are pure functions of
//!   their token context the rebuilt outputs are bit-identical.
//!   Interior stems are naturally protected until their subtree
//!   evicts away. Recency stamps come from a monotonic counter, never
//!   wall clock, so eviction order — and therefore every golden and
//!   streaming-vs-batch comparison — is deterministic.
//!
//! Residency ([`PrefixCache::resident`]) is charged against
//! [`crate::ServeConfig::session_cap`] alongside live sessions by the
//! owning [`crate::ServeEngine`]; the fleet layer probes
//! [`PrefixCache::match_depth`] per worker to route prefix-affine
//! requests to the worker already holding the stem
//! ([`crate::RoutePolicy::PrefixAffine`]).

use verispec_lm::{SnapshotSession, TokenId};

/// One radix-trie node: an edge label from its parent plus an optional
/// frozen session snapshot for the full root-to-here prefix.
struct Node<'m> {
    /// Edge tokens from the parent (empty only at the root).
    label: Vec<TokenId>,
    /// Parent node index (`usize::MAX` at the root).
    parent: usize,
    /// Child node indices (labels start with pairwise-distinct tokens).
    children: Vec<usize>,
    /// Frozen session whose context is the root-to-here prefix; `None`
    /// for the root and for interior branch points whose snapshot was
    /// never taken (or has no reason to exist).
    session: Option<Box<dyn SnapshotSession<'m> + 'm>>,
    /// Total prefix length in tokens (root = 0).
    depth: usize,
    /// Recency stamp from the cache's monotonic counter.
    last_used: u64,
}

/// The copy-on-write radix-tree prefix cache; see the module docs.
///
/// Nodes live in an arena with a free list, so node ids — and with
/// them every walk and eviction decision — are deterministic across
/// identical operation sequences.
pub struct PrefixCache<'m> {
    nodes: Vec<Node<'m>>,
    /// Recycled arena slots (popped LIFO — deterministic).
    free: Vec<usize>,
    /// Monotonic recency counter (never wall clock: eviction order must
    /// be a pure function of the operation sequence).
    clock: u64,
    /// Nodes currently holding a session snapshot.
    resident: usize,
}

const ROOT: usize = 0;

impl<'m> PrefixCache<'m> {
    /// An empty cache.
    pub fn new() -> Self {
        PrefixCache {
            nodes: vec![Node {
                label: Vec::new(),
                parent: usize::MAX,
                children: Vec::new(),
                session: None,
                depth: 0,
                last_used: 0,
            }],
            free: Vec::new(),
            clock: 0,
            resident: 0,
        }
    }

    /// Snapshot-holding nodes resident right now — the memory the
    /// session cap charges.
    pub fn resident(&self) -> usize {
        self.resident
    }

    fn touch(&mut self, id: usize) {
        self.clock += 1;
        self.nodes[id].last_used = self.clock;
    }

    fn alloc(&mut self, node: Node<'m>) -> usize {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id] = node;
                id
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Walks `prompt` down the trie: returns the deepest
    /// snapshot-holding node whose prefix is a prefix of `prompt`
    /// (excluding the trivial root), with its depth.
    fn best_match(&self, prompt: &[TokenId]) -> Option<(usize, usize)> {
        let mut node = ROOT;
        let mut pos = 0usize;
        let mut best: Option<(usize, usize)> = None;
        loop {
            if node != ROOT && self.nodes[node].session.is_some() {
                best = Some((node, pos));
            }
            let Some(&child) = self.nodes[node]
                .children
                .iter()
                .find(|&&c| self.nodes[c].label.first() == prompt.get(pos))
            else {
                return best;
            };
            let label = &self.nodes[child].label;
            if prompt.len() - pos < label.len() || !prompt[pos..].starts_with(label) {
                return best;
            }
            pos += label.len();
            node = child;
        }
    }

    /// Deepest cached-prefix length for `prompt`, in tokens — the
    /// read-only routing probe (no recency bump, no fork).
    pub fn match_depth(&self, prompt: &[TokenId]) -> usize {
        self.best_match(prompt).map_or(0, |(_, depth)| depth)
    }

    /// Cache lookup: forks a full-lifetime session from the deepest
    /// matching snapshot and bumps its recency. Returns the fork and
    /// the number of prompt tokens it already holds; `None` on miss.
    pub fn lookup(
        &mut self,
        prompt: &[TokenId],
    ) -> Option<(Box<dyn SnapshotSession<'m> + 'm>, usize)> {
        let (node, depth) = self.best_match(prompt)?;
        self.touch(node);
        let fork = self.nodes[node]
            .session
            .as_ref()
            .expect("best_match only returns snapshot-holding nodes")
            .fork_snapshot();
        Some((fork, depth))
    }

    /// Inserts `prompt` into the trie, splitting edges on divergence.
    /// `snap(depth)` must produce a frozen session over
    /// `prompt[..depth]`; it is called for the full-prompt node and for
    /// any divergence/split point that lacks a snapshot (the shared
    /// stem a future prompt will actually hit).
    pub fn insert(
        &mut self,
        prompt: &[TokenId],
        snap: &mut dyn FnMut(usize) -> Box<dyn SnapshotSession<'m> + 'm>,
    ) {
        if prompt.is_empty() {
            return;
        }
        let mut node = ROOT;
        let mut pos = 0usize;
        loop {
            if pos == prompt.len() {
                // The prompt ends exactly at an existing node: ensure it
                // holds a snapshot (it may have been created as a bare
                // branch point or lost its session to eviction — no:
                // eviction drops whole nodes, but branch points start
                // bare).
                self.ensure_session(node, pos, snap);
                self.touch(node);
                return;
            }
            let next = self.nodes[node]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].label.first() == Some(&prompt[pos]));
            let Some(child) = next else {
                // Divergence at an existing node: `node` is the shared
                // stem of this prompt and whatever already branches
                // here, so make sure the stem itself is hittable, then
                // grow the new leaf.
                if node != ROOT {
                    self.ensure_session(node, pos, snap);
                }
                self.add_leaf(node, prompt[pos..].to_vec(), prompt.len(), snap);
                return;
            };
            let common = self.nodes[child]
                .label
                .iter()
                .zip(&prompt[pos..])
                .take_while(|(a, b)| a == b)
                .count();
            if common == self.nodes[child].label.len() {
                node = child;
                pos += common;
                continue;
            }
            // Divergence mid-edge: split the edge at `common`. The new
            // intermediate node is the shared stem — snapshot it so the
            // stem is hittable by the *next* prompt that shares it.
            let mid = self.split_edge(node, child, common);
            self.ensure_session(mid, pos + common, snap);
            self.touch(mid);
            if pos + common < prompt.len() {
                self.add_leaf(mid, prompt[pos + common..].to_vec(), prompt.len(), snap);
            }
            return;
        }
    }

    fn ensure_session(
        &mut self,
        node: usize,
        depth: usize,
        snap: &mut dyn FnMut(usize) -> Box<dyn SnapshotSession<'m> + 'm>,
    ) {
        debug_assert_eq!(self.nodes[node].depth, depth, "trie depth out of sync");
        if node != ROOT && self.nodes[node].session.is_none() {
            self.nodes[node].session = Some(snap(depth));
            self.resident += 1;
        }
    }

    fn add_leaf(
        &mut self,
        parent: usize,
        label: Vec<TokenId>,
        depth: usize,
        snap: &mut dyn FnMut(usize) -> Box<dyn SnapshotSession<'m> + 'm>,
    ) {
        debug_assert!(!label.is_empty(), "leaf edges are never empty");
        self.clock += 1;
        let leaf = self.alloc(Node {
            label,
            parent,
            children: Vec::new(),
            session: Some(snap(depth)),
            depth,
            last_used: self.clock,
        });
        self.resident += 1;
        self.nodes[parent].children.push(leaf);
    }

    /// Splits `child`'s edge after `common` tokens: inserts an
    /// intermediate node between `parent` and `child` carrying the
    /// shared head of the label; `child` keeps the tail. Returns the
    /// intermediate node.
    fn split_edge(&mut self, parent: usize, child: usize, common: usize) -> usize {
        debug_assert!(common > 0 && common < self.nodes[child].label.len());
        let head = self.nodes[child].label[..common].to_vec();
        let tail = self.nodes[child].label[common..].to_vec();
        let depth = self.nodes[child].depth - tail.len();
        self.clock += 1;
        let mid = self.alloc(Node {
            label: head,
            parent,
            children: vec![child],
            session: None,
            depth,
            last_used: self.clock,
        });
        self.nodes[child].label = tail;
        self.nodes[child].parent = mid;
        let slot = self.nodes[parent]
            .children
            .iter()
            .position(|&c| c == child)
            .expect("child is linked under parent");
        self.nodes[parent].children[slot] = mid;
        mid
    }

    /// Evicts the least-recently-used snapshot-holding **leaf** (ties
    /// by node id, so eviction is deterministic), dropping the node and
    /// any snapshot-less ancestors that become childless. Returns
    /// `false` when nothing is evictable (the cache is empty).
    ///
    /// This is the exact-replay eviction path: a later miss on the
    /// evicted prefix rebuilds the session from the full prompt, and
    /// sessions are pure functions of their token context, so outputs
    /// are bit-identical either way.
    pub fn evict_lru(&mut self) -> bool {
        let victim = self
            .nodes
            .iter()
            .enumerate()
            // Freed arena slots hold no session, so they never match.
            .filter(|(id, n)| *id != ROOT && n.session.is_some() && n.children.is_empty())
            .min_by_key(|(id, n)| (n.last_used, *id))
            .map(|(id, _)| id);
        let Some(mut id) = victim else {
            return false;
        };
        loop {
            let parent = self.nodes[id].parent;
            if self.nodes[id].session.take().is_some() {
                self.resident -= 1;
            }
            self.nodes[id].label = Vec::new();
            self.nodes[id].children = Vec::new();
            self.free.push(id);
            let slot = self.nodes[parent]
                .children
                .iter()
                .position(|&c| c == id)
                .expect("evicted node is linked under its parent");
            self.nodes[parent].children.swap_remove(slot);
            // Climb: a snapshot-less interior node with no children
            // left serves nothing — drop it too. A snapshot-holding
            // stem that just became a leaf stays (now itself LRU-
            // evictable).
            if parent == ROOT
                || self.nodes[parent].session.is_some()
                || !self.nodes[parent].children.is_empty()
            {
                return true;
            }
            id = parent;
        }
    }
}

impl Default for PrefixCache<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_lm::{LanguageModel, MlpLm, MlpLmConfig};

    fn model() -> MlpLm {
        MlpLm::new(MlpLmConfig::tiny(12))
    }

    /// Inserts `prompt` the way admission does: ingest fully, then
    /// snapshot the requested prefixes by fork + truncate.
    fn insert_prompt<'m>(cache: &mut PrefixCache<'m>, model: &'m MlpLm, prompt: &[TokenId]) {
        let mut work = model.snapshot_session().expect("mlp snapshots");
        work.append(prompt);
        cache.insert(prompt, &mut |depth| {
            let mut s = work.fork_snapshot();
            s.truncate(depth);
            s
        });
    }

    #[test]
    fn split_on_divergence_creates_a_hittable_stem() {
        let m = model();
        let mut cache = PrefixCache::new();
        assert_eq!(cache.match_depth(&[1, 2, 3]), 0);
        insert_prompt(&mut cache, &m, &[1, 2, 3, 4]);
        // A second prompt diverging after [1,2] splits the edge; the
        // split point [1,2] becomes a snapshot-holding stem.
        insert_prompt(&mut cache, &m, &[1, 2, 7, 8]);
        assert_eq!(cache.match_depth(&[1, 2, 9]), 2, "stem hit at the split");
        assert_eq!(cache.match_depth(&[1, 2, 3, 4, 5]), 4, "deepest wins");
        assert_eq!(cache.match_depth(&[1, 2, 7, 8]), 4);
        assert_eq!(cache.match_depth(&[2, 2]), 0, "no shared stem, no match");
        // Divergence at an existing node (not mid-edge) also grows a
        // leaf under the stem.
        insert_prompt(&mut cache, &m, &[1, 2, 5]);
        assert_eq!(cache.match_depth(&[1, 2, 5, 6]), 3);
        // Lookup forks a session holding exactly the matched prefix.
        let (fork, depth) = cache.lookup(&[1, 2, 9, 9]).expect("stem hit");
        assert_eq!(depth, 2);
        assert_eq!(fork.tokens(), &[1, 2]);
    }

    #[test]
    fn forks_are_copy_on_write_isolated() {
        let m = model();
        let mut cache = PrefixCache::new();
        insert_prompt(&mut cache, &m, &[3, 4, 5]);
        let (mut a, _) = cache.lookup(&[3, 4, 5, 6]).expect("hit");
        let (mut b, _) = cache.lookup(&[3, 4, 5, 7]).expect("hit");
        a.append(&[6]);
        b.append(&[7, 8]);
        assert_eq!(a.logits(), m.logits(&[3, 4, 5, 6]));
        assert_eq!(b.logits(), m.logits(&[3, 4, 5, 7, 8]));
        // The cached snapshot itself is untouched by either fork.
        let (c, depth) = cache.lookup(&[3, 4, 5, 9]).expect("hit");
        assert_eq!(depth, 3);
        assert_eq!(c.tokens(), &[3, 4, 5]);
    }

    #[test]
    fn lru_leaf_eviction_protects_stems_until_childless() {
        let m = model();
        let mut cache = PrefixCache::new();
        insert_prompt(&mut cache, &m, &[1, 2, 3]);
        insert_prompt(&mut cache, &m, &[1, 2, 4]);
        // Stem [1,2] + leaves [1,2,3], [1,2,4].
        assert_eq!(cache.resident(), 3);
        // Touch leaf [1,2,3] so leaf [1,2,4] is LRU.
        cache.lookup(&[1, 2, 3]).expect("hit");
        assert!(cache.evict_lru());
        assert_eq!(cache.resident(), 2);
        assert_eq!(cache.match_depth(&[1, 2, 4]), 2, "evicted leaf, stem stays");
        assert_eq!(cache.match_depth(&[1, 2, 3]), 3, "hot leaf survives");
        // Next eviction takes the remaining leaf; the stem — now
        // childless — only goes after it.
        assert!(cache.evict_lru());
        assert_eq!(cache.match_depth(&[1, 2, 3]), 2, "stem is now the deepest");
        assert!(cache.evict_lru());
        assert_eq!(cache.resident(), 0);
        assert!(!cache.evict_lru(), "empty cache has nothing to evict");
        assert_eq!(cache.match_depth(&[1, 2, 3]), 0);
        // A later miss rebuilds from the full prompt — bit-identically,
        // because sessions are pure functions of their context.
        insert_prompt(&mut cache, &m, &[1, 2, 3]);
        let (mut s, depth) = cache.lookup(&[1, 2, 3]).expect("rebuilt");
        assert_eq!(depth, 3);
        assert_eq!(s.logits(), m.logits(&[1, 2, 3]));
    }

    #[test]
    fn arena_recycles_slots_deterministically() {
        let m = model();
        let mut cache = PrefixCache::new();
        for round in 0..3 {
            insert_prompt(&mut cache, &m, &[5, 6, 7]);
            insert_prompt(&mut cache, &m, &[5, 6, 8]);
            assert_eq!(cache.resident(), 3, "round {round}");
            while cache.evict_lru() {}
            assert_eq!(cache.resident(), 0, "round {round}");
        }
        // The arena never grew past one round's worth of nodes.
        assert!(
            cache.nodes.len() <= 5,
            "arena leaked: {}",
            cache.nodes.len()
        );
    }
}
