//! Property tests pinning the threaded dispatch runtime to its
//! lockstep oracle: for random request mixes (including
//! grammar-constrained engines), worker counts (1/2/4), routing
//! policies (probe-less and probing), both drives (batch and paced),
//! and preemption/eviction churn, the threaded fleet's report is
//! **tick-for-tick, token-for-token identical** to the lockstep
//! [`Dispatcher`]'s, and the merged event streams are event-for-event
//! identical under [`canonicalize_fleet_events`].
//!
//! CI replays this suite under `VERISPEC_THREADS=2` and `=4` so the
//! matvec pool override cannot perturb schedules either.

use proptest::prelude::*;
use verispec_core::DecodeConfig;
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, Sampling, TokenId};
use verispec_serve::{
    DispatchConfig, Dispatcher, EngineChoice, Request, RoutePolicy, ServeConfig,
    ThreadedDispatcher, TickOrder,
};
use verispec_trace::{canonicalize_fleet_events, EventLog};

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (12usize..28, 2usize..7, 2usize..6, 0usize..5, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

/// Engine mix for threaded parity: the full dispatch spectrum plus the
/// grammar-constrained engines (chain and tree), which exercise the
/// propose-time pruning path and its `GrammarPrune` events across
/// threads.
fn any_engine() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::Ntp),
        Just(EngineChoice::MedusaChain),
        (1usize..3, 1usize..3).prop_map(|(a, b)| EngineChoice::MedusaTree(vec![a, b])),
        Just(EngineChoice::SyntaxAligned { tree: None }),
        Just(EngineChoice::GrammarTree { tree: None }),
        (1usize..3).prop_map(|k| EngineChoice::GrammarTree {
            tree: Some(vec![k, k])
        }),
        (1usize..4).prop_map(|gamma| EngineChoice::DraftVerify { gamma }),
    ]
}

fn any_sampling() -> impl Strategy<Value = Sampling> {
    prop_oneof![
        Just(Sampling::Greedy),
        (0.3f32..1.2).prop_map(Sampling::temperature),
    ]
}

/// Every route policy, probing and probe-less: rr skips the probe
/// round-trip entirely, jsq/least-loaded/prefix-affine force the
/// threaded coordinator through the synchronous probe barrier.
fn any_route() -> impl Strategy<Value = RoutePolicy> {
    prop_oneof![
        Just(RoutePolicy::RoundRobin),
        Just(RoutePolicy::JoinShortestQueue),
        Just(RoutePolicy::LeastLoaded),
        Just(RoutePolicy::PrefixAffine),
    ]
}

fn any_order() -> impl Strategy<Value = TickOrder> {
    prop_oneof![
        Just(TickOrder::RoundRobin),
        Just(TickOrder::ShortestFirst),
        any::<u64>().prop_map(TickOrder::Seeded),
        Just(TickOrder::Edf),
    ]
}

/// The worker counts the acceptance bar names: degenerate (1), the
/// smallest true fleet (2), and past the container's core count (4).
fn any_workers() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4)]
}

/// Per-request raw material: ((engine, prompt, max_tokens),
/// (sampling, seed, arrival, deadline slack)).
type RawRequest = (
    (EngineChoice, Vec<TokenId>, usize),
    (Sampling, u64, u64, Option<u64>),
);

fn any_requests() -> impl Strategy<Value = Vec<RawRequest>> {
    prop::collection::vec(
        (
            (
                any_engine(),
                prop::collection::vec(4u32..10, 1..4),
                1usize..16,
            ),
            (
                any_sampling(),
                any::<u64>(),
                0u64..8,
                prop_oneof![Just(None), (4u64..60).prop_map(Some)],
            ),
        ),
        1..8,
    )
}

fn build_requests(raw: &[RawRequest]) -> Vec<Request> {
    raw.iter()
        .enumerate()
        .map(
            |(i, ((engine, prompt, max_tokens), (sampling, seed, arrival, slack)))| {
                let cfg = DecodeConfig {
                    max_tokens: *max_tokens,
                    sampling: *sampling,
                    seed: *seed,
                    ..Default::default()
                };
                Request {
                    arrival: *arrival,
                    deadline: slack.map(|s| arrival + s),
                    ..Request::new(i as u64, prompt.clone(), engine.clone(), cfg)
                }
            },
        )
        .collect()
}

/// A deterministic byte table over the model's whole vocab, mixing
/// transparent specials, benign Verilog-ish bytes, and a lethal
/// control byte so the grammar viability filter actually prunes.
fn oracle_for(vocab: usize) -> GrammarOracle {
    let bytes: Vec<Vec<u8>> = (0..vocab)
        .map(|id| match id % 8 {
            0 => Vec::new(),
            1 => b"(".to_vec(),
            2 => b")".to_vec(),
            3 => b"a".to_vec(),
            4 => b" ".to_vec(),
            5 => b";".to_vec(),
            6 => vec![0x07],
            _ => b"b".to_vec(),
        })
        .collect();
    GrammarOracle::new(bytes)
}

/// The churn knobs the acceptance bar names: tight pools, preemption,
/// session-cap eviction, verify budgets, and shedding.
#[derive(Debug, Clone)]
struct Churn {
    max_active: usize,
    max_batch: usize,
    preempt_wait: Option<u64>,
    session_cap: Option<usize>,
    tick_capacity: Option<usize>,
    shed_depth: Option<usize>,
    prefix_cache: bool,
}

fn any_churn() -> impl Strategy<Value = Churn> {
    (
        (
            1usize..4,
            1usize..3,
            prop_oneof![Just(None), (1u64..6).prop_map(Some)],
            prop_oneof![Just(None), (2usize..5).prop_map(Some)],
        ),
        (
            prop_oneof![Just(None), (2usize..20).prop_map(Some)],
            prop_oneof![Just(None), (1usize..4).prop_map(Some)],
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (max_active, max_batch, preempt_wait, session_cap),
                (tick_capacity, shed_depth, prefix_cache),
            )| Churn {
                max_active,
                max_batch,
                preempt_wait,
                session_cap,
                tick_capacity,
                shed_depth,
                prefix_cache,
            },
        )
}

fn serve_config(churn: &Churn, order: TickOrder) -> ServeConfig {
    ServeConfig {
        max_active: churn.max_active,
        max_batch: churn.max_batch,
        order,
        preempt_wait: churn.preempt_wait,
        session_cap: churn.session_cap,
        tick_capacity: churn.tick_capacity,
        shed_depth: churn.shed_depth,
        prefix_cache: churn.prefix_cache,
        ..Default::default()
    }
}

/// The warm stem shared by both drives when the prefix cache is on; a
/// prefix of the request prompt alphabet so affine routing can hit.
const WARM_STEM: &[TokenId] = &[4, 5, 6];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The paced threaded drive is bit-identical to the lockstep paced
    /// oracle: same completions (every tick stamp), same shedding,
    /// same stats and per-worker split, same route assignments, and
    /// the same canonical event stream.
    #[test]
    fn threaded_paced_is_bit_identical_to_lockstep(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in any_workers(),
        route in any_route(),
        order in any_order(),
        churn in any_churn(),
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let oracle = oracle_for(model.vocab_size());
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let cfg = serve_config(&churn, order);
        let dcfg = DispatchConfig::new(workers, route);

        let log = EventLog::new();
        let mut lockstep_d = Dispatcher::new(&model, cfg.clone(), dcfg.clone())
            .with_sink(&log)
            .with_draft(&draft)
            .with_grammar(&oracle);
        if churn.prefix_cache {
            lockstep_d.warm_prefix(WARM_STEM);
        }
        let lockstep = lockstep_d.run_paced(requests.clone(), &cost);

        let mut threaded_d = ThreadedDispatcher::new(&model, cfg, dcfg)
            .with_tracing()
            .with_draft(&draft)
            .with_grammar(&oracle);
        if churn.prefix_cache {
            threaded_d = threaded_d.warm_prefix(WARM_STEM);
        }
        let threaded = threaded_d.run_paced_threaded(requests.clone(), &cost);

        prop_assert_eq!(threaded.report.assignments.len(), requests.len());
        prop_assert!(
            threaded.report.same_schedule(&lockstep),
            "threaded paced drive diverged from lockstep on {} workers under {} routing",
            workers,
            lockstep.assignments.len()
        );
        let lockstep_events = canonicalize_fleet_events(&log.into_events());
        prop_assert_eq!(
            canonicalize_fleet_events(&threaded.events),
            lockstep_events,
            "merged event streams diverged"
        );
        // The threaded merge is canonical by construction.
        prop_assert_eq!(&canonicalize_fleet_events(&threaded.events), &threaded.events);
    }

    /// The batch threaded drive (everything routed up front, zero
    /// barriers end to end) is bit-identical to the lockstep batch
    /// drive over the same un-sorted submission order.
    #[test]
    fn threaded_batch_is_bit_identical_to_lockstep(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in any_workers(),
        route in any_route(),
        order in any_order(),
        churn in any_churn(),
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let oracle = oracle_for(model.vocab_size());
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let cfg = serve_config(&churn, order);
        let dcfg = DispatchConfig::new(workers, route);

        let log = EventLog::new();
        let mut lockstep_d = Dispatcher::new(&model, cfg.clone(), dcfg.clone())
            .with_sink(&log)
            .with_draft(&draft)
            .with_grammar(&oracle);
        if churn.prefix_cache {
            lockstep_d.warm_prefix(WARM_STEM);
        }
        for req in requests.clone() {
            lockstep_d.submit(req);
        }
        let lockstep = lockstep_d.run(&cost);

        let mut threaded_d = ThreadedDispatcher::new(&model, cfg, dcfg)
            .with_tracing()
            .with_draft(&draft)
            .with_grammar(&oracle);
        if churn.prefix_cache {
            threaded_d = threaded_d.warm_prefix(WARM_STEM);
        }
        let threaded = threaded_d.run_threaded(requests.clone(), &cost);

        prop_assert_eq!(threaded.report.assignments.len(), requests.len());
        prop_assert!(
            threaded.report.same_schedule(&lockstep),
            "threaded batch drive diverged from lockstep on {} workers",
            workers
        );
        prop_assert_eq!(
            canonicalize_fleet_events(&threaded.events),
            canonicalize_fleet_events(&log.into_events()),
            "merged event streams diverged"
        );
    }
}
