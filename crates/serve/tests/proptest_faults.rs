//! Property tests for the fault-injection layer behind
//! [`FleetRuntime`]: deterministic worker crash/recovery with session
//! migration by exact replay.
//!
//! Three claims are pinned here:
//!
//! 1. **Migration never changes a token** — for random request mixes,
//!    worker counts (1/2/4), routing policies, and random
//!    [`FaultPlan`]s (crashes, restarts, whole-fleet outages with
//!    backpressure), every request the faulted fleet completes carries
//!    *exactly* the tokens the fault-free fleet produced for it, on
//!    both backends. Crashes may reschedule or shed work; they may
//!    never corrupt it.
//! 2. **Backends agree under faults** — the threaded fleet and the
//!    lockstep oracle produce tick-identical reports and canonical
//!    event streams for the same fault plan, so the whole fault layer
//!    (migration order, backpressure, restart flushes, fleet shedding)
//!    is pinned across both execution models.
//! 3. **Weighted shares never starve a class** — with multi-tenant
//!    [`FaultPlan::classes`] shares (which switch workers to
//!    [`TickOrder::WeightedFair`]), every request of every class
//!    completes within the scheduler's aging bound, even when one
//!    class's weight dwarfs the others'.

use proptest::prelude::*;
use std::collections::HashMap;
use verispec_core::DecodeConfig;
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, Sampling, TokenId};
use verispec_serve::{
    Backend, Drive, EngineChoice, FaultPlan, FleetRuntime, Request, RoutePolicy, Scheduler,
    ServeConfig, TickOrder,
};
use verispec_trace::canonicalize_fleet_events;

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (12usize..26, 2usize..6, 2usize..5, 0usize..4, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_engine() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::Ntp),
        Just(EngineChoice::MedusaChain),
        (1usize..3, 1usize..3).prop_map(|(a, b)| EngineChoice::MedusaTree(vec![a, b])),
        Just(EngineChoice::SyntaxAligned { tree: None }),
        Just(EngineChoice::GrammarTree { tree: None }),
        (1usize..4).prop_map(|gamma| EngineChoice::DraftVerify { gamma }),
    ]
}

fn any_sampling() -> impl Strategy<Value = Sampling> {
    prop_oneof![
        Just(Sampling::Greedy),
        (0.3f32..1.2).prop_map(Sampling::temperature),
    ]
}

fn any_route() -> impl Strategy<Value = RoutePolicy> {
    prop_oneof![
        Just(RoutePolicy::RoundRobin),
        Just(RoutePolicy::JoinShortestQueue),
        Just(RoutePolicy::LeastLoaded),
        Just(RoutePolicy::PrefixAffine),
    ]
}

fn any_order() -> impl Strategy<Value = TickOrder> {
    prop_oneof![
        Just(TickOrder::RoundRobin),
        Just(TickOrder::ShortestFirst),
        any::<u64>().prop_map(TickOrder::Seeded),
        Just(TickOrder::Edf),
    ]
}

fn any_workers() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4)]
}

/// Raw material for a random failure scenario: up to six
/// (crash?, tick, worker seed) triples at ticks inside the serving
/// window. [`build_plan`] folds the worker seed into the fleet size.
type RawPlan = Vec<(bool, u64, usize)>;

fn any_plan() -> impl Strategy<Value = RawPlan> {
    prop::collection::vec((any::<bool>(), 0u64..60, 0usize..20), 0..6)
}

/// Builds the plan for a concrete fleet size: worker seeds land on
/// in-range workers plus the occasional out-of-range index (which must
/// be an idempotent no-op). Single-worker fleets routinely get a crash
/// with a late (or no) restart, exercising whole-fleet backpressure,
/// restart flushes, and deterministic fleet shedding.
fn build_plan(raw: &RawPlan, workers: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &(crash, tick, seed) in raw {
        let worker = seed % (workers + 1);
        plan = if crash {
            plan.crash(tick, worker)
        } else {
            plan.restart(tick, worker)
        };
    }
    plan
}

/// Per-request raw material: ((engine, prompt, max_tokens),
/// (sampling, seed, arrival, class)).
type RawRequest = (
    (EngineChoice, Vec<TokenId>, usize),
    (Sampling, u64, u64, u32),
);

fn any_requests() -> impl Strategy<Value = Vec<RawRequest>> {
    prop::collection::vec(
        (
            (
                any_engine(),
                prop::collection::vec(4u32..10, 1..4),
                1usize..14,
            ),
            (any_sampling(), any::<u64>(), 0u64..8, 0u32..3),
        ),
        1..8,
    )
}

/// Builds the request set without deadlines, so the fault-free oracle
/// completes everything and shedding in the faulted run can only come
/// from the fault layer itself.
fn build_requests(raw: &[RawRequest]) -> Vec<Request> {
    raw.iter()
        .enumerate()
        .map(
            |(i, ((engine, prompt, max_tokens), (sampling, seed, arrival, class)))| {
                let cfg = DecodeConfig {
                    max_tokens: *max_tokens,
                    sampling: *sampling,
                    seed: *seed,
                    ..Default::default()
                };
                Request {
                    arrival: *arrival,
                    ..Request::new(i as u64, prompt.clone(), engine.clone(), cfg)
                }
                .with_class(*class)
            },
        )
        .collect()
}

fn oracle_for(vocab: usize) -> GrammarOracle {
    let bytes: Vec<Vec<u8>> = (0..vocab)
        .map(|id| match id % 8 {
            0 => Vec::new(),
            1 => b"(".to_vec(),
            2 => b")".to_vec(),
            3 => b"a".to_vec(),
            4 => b" ".to_vec(),
            5 => b";".to_vec(),
            6 => vec![0x07],
            _ => b"b".to_vec(),
        })
        .collect();
    GrammarOracle::new(bytes)
}

fn serve_config(max_active: usize, max_batch: usize, order: TickOrder) -> ServeConfig {
    ServeConfig {
        max_active,
        max_batch,
        order,
        ..Default::default()
    }
}

fn runtime<'m>(
    model: &'m MlpLm,
    draft: &'m NgramLm,
    oracle: &'m GrammarOracle,
    cfg: ServeConfig,
    workers: usize,
    route: RoutePolicy,
    backend: Backend,
) -> FleetRuntime<'m> {
    FleetRuntime::new(model, cfg, workers, route.clone(), backend)
        .with_draft(draft)
        .with_grammar(oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Claim 1: crash/recovery with migration-by-exact-replay is
    /// output-transparent. Every completion of the faulted run is
    /// token-for-token (and step/trace-for-step) the fault-free
    /// oracle's completion for the same id, on both backends, and
    /// every request is accounted for (completed or deterministically
    /// shed under whole-fleet backpressure).
    #[test]
    fn faulted_completions_are_token_identical_to_fault_free(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in any_workers(),
        raw_plan in any_plan(),
        route in any_route(),
        order in any_order(),
        max_active in 1usize..4,
        max_batch in 1usize..3,
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let oracle = oracle_for(model.vocab_size());
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let plan = build_plan(&raw_plan, workers);
        let cfg = serve_config(max_active, max_batch, order);

        for backend in [Backend::Lockstep, Backend::Threaded] {
            let baseline = runtime(&model, &draft, &oracle, cfg.clone(), workers, route.clone(), backend)
                .run(Drive::Paced(requests.clone()), &cost);
            prop_assert_eq!(
                baseline.report.completions.len(),
                requests.len(),
                "fault-free {:?} fleet lost requests", backend
            );
            let want: HashMap<u64, _> = baseline
                .report
                .completions
                .iter()
                .map(|c| (c.id, c))
                .collect();

            let faulted = runtime(&model, &draft, &oracle, cfg.clone(), workers, route.clone(), backend)
                .with_fault_plan(plan.clone())
                .run(Drive::Paced(requests.clone()), &cost);
            prop_assert_eq!(
                faulted.report.completions.len() + faulted.report.shed.len(),
                requests.len(),
                "{:?} fleet lost requests under plan {:?}", backend, plan
            );
            for c in &faulted.report.completions {
                let w = want[&c.id];
                prop_assert_eq!(
                    &c.output.tokens, &w.output.tokens,
                    "request {} tokens diverged under {:?} faults {:?}",
                    c.id, backend, plan
                );
                prop_assert_eq!(c.output.steps, w.output.steps, "request {} steps", c.id);
                prop_assert_eq!(&c.output.trace, &w.output.trace, "request {} trace", c.id);
            }
        }
    }

    /// Claim 2: the threaded fleet is bit-identical to the lockstep
    /// oracle under random fault plans — same completions (every tick
    /// stamp), same shedding, same migrations, and the same canonical
    /// event stream, across worker counts and routing policies.
    #[test]
    fn threaded_faulted_is_bit_identical_to_lockstep(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in any_workers(),
        raw_plan in any_plan(),
        route in any_route(),
        order in any_order(),
        max_active in 1usize..4,
        max_batch in 1usize..3,
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let oracle = oracle_for(model.vocab_size());
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let plan = build_plan(&raw_plan, workers);
        let cfg = serve_config(max_active, max_batch, order);

        let lockstep = runtime(
            &model, &draft, &oracle, cfg.clone(), workers, route.clone(), Backend::Lockstep,
        )
        .with_tracing()
        .with_fault_plan(plan.clone())
        .run(Drive::Paced(requests.clone()), &cost);

        let threaded = runtime(
            &model, &draft, &oracle, cfg, workers, route.clone(), Backend::Threaded,
        )
        .with_tracing()
        .with_fault_plan(plan.clone())
        .run(Drive::Paced(requests), &cost);

        prop_assert!(
            threaded.report.same_schedule(&lockstep.report),
            "threaded fleet diverged from lockstep on {} workers under plan {:?}",
            workers, plan
        );
        prop_assert_eq!(
            &threaded.events, &lockstep.events,
            "fault event streams diverged under plan {:?}", plan
        );
        // Both facade streams are canonical by construction.
        prop_assert_eq!(&canonicalize_fleet_events(&threaded.events), &threaded.events);
    }

    /// Claim 3: multi-tenant weighted-fairness shares reshape service
    /// order without starving anyone — under skewed per-class weights
    /// every request of every class completes, and no completion's
    /// largest service gap exceeds the scheduler's aging bound.
    #[test]
    fn weighted_fair_shares_never_starve_a_class(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in any_workers(),
        route in any_route(),
        weights in prop::collection::vec(1u32..6, 1..4),
        max_active in 1usize..4,
        max_batch in 1usize..3,
        backend in prop_oneof![Just(Backend::Lockstep), Just(Backend::Threaded)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let oracle = oracle_for(model.vocab_size());
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        // Shares only: the plan installs WeightedFair + class weights
        // through the facade without any crash events.
        let mut plan = FaultPlan::none();
        for (class, w) in weights.iter().enumerate() {
            plan = plan.share(class as u32, *w);
        }
        // The order below is overridden by the plan's shares.
        let cfg = serve_config(max_active, max_batch, TickOrder::RoundRobin);

        let run = runtime(&model, &draft, &oracle, cfg, workers, route.clone(), backend)
            .with_fault_plan(plan)
            .run(Drive::Paced(requests.clone()), &cost);

        prop_assert_eq!(
            run.report.completions.len(),
            requests.len(),
            "a class starved: {} of {} requests completed",
            run.report.completions.len(),
            requests.len()
        );
        let bound = Scheduler::new(TickOrder::WeightedFair, max_active, max_batch)
            .with_class_weights(&weights)
            .starvation_bound();
        for c in &run.report.completions {
            prop_assert!(
                c.max_service_gap <= bound + max_active as u64,
                "request {} service gap {} exceeds aging bound {}",
                c.id, c.max_service_gap, bound
            );
        }
    }
}
