//! Property tests for the speculation-policy layer.
//!
//! Two claims are pinned here:
//!
//! 1. **Purity** — an [`AdaptivePolicy`] decision is a pure function of
//!    the request's *own* acceptance history within the policy window:
//!    equal windows (however the histories got there) give equal
//!    decisions, for random histories and bases.
//! 2. **Served == serial under adaptation** — because of (1), serving
//!    a mix of requests under an adaptive policy produces
//!    token-for-token the outputs of the serial policy-driven engine,
//!    across random engines, seeds, sampling, tick orders, preemption,
//!    prefix-fork eviction pressure, and batch sizes. Adaptation never
//!    leaks batch composition into a request's stream.

use proptest::prelude::*;
use verispec_core::{
    AcceptHistory, AdaptivePolicy, DecodeConfig, ShapeQuery, SpecPolicy, SpecShape, Stepper,
};
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, Sampling, TokenId};
use verispec_serve::{EngineChoice, Request, ServeConfig, ServeEngine, TickOrder};

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (14usize..28, 2usize..8, 2usize..5, 1usize..5, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_base() -> impl Strategy<Value = SpecShape> {
    prop_oneof![
        (1usize..6).prop_map(|depth| SpecShape::Chain { depth }),
        (prop::collection::vec(1usize..4, 0..4), 1usize..6)
            .prop_map(|(widths, depth)| SpecShape::Tree { widths, depth }),
        (1usize..6).prop_map(|gamma| SpecShape::Draft { gamma }),
    ]
}

fn any_engine() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::MedusaChain),
        prop::collection::vec(1usize..3, 1..3).prop_map(EngineChoice::MedusaTree),
        Just(EngineChoice::SyntaxAligned { tree: None }),
        prop::collection::vec(1usize..3, 1..3)
            .prop_map(|w| EngineChoice::SyntaxAligned { tree: Some(w) }),
        (1usize..4).prop_map(|gamma| EngineChoice::DraftVerify { gamma }),
    ]
}

fn serial_with_policy(
    model: &MlpLm,
    draft: &NgramLm,
    req: &Request,
    cost: &GpuCostModel,
    policy: &dyn SpecPolicy,
) -> Vec<TokenId> {
    let mut stepper = match &req.engine {
        EngineChoice::DraftVerify { .. } => {
            let dcfg = req.engine.draft_config(&req.cfg).expect("draft cfg");
            Stepper::draft_verify(model, draft, &req.prompt, dcfg)
        }
        _ => Stepper::speculative(model, &req.prompt, req.engine.decode_config(&req.cfg)),
    }
    .with_policy(policy);
    while stepper.step(cost) {}
    stepper.into_output().tokens
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Equal recent windows → equal decisions, regardless of how the
    /// histories were built: entries older than the policy window must
    /// not influence the decision, and rebuilding the same window from
    /// scratch reproduces it exactly.
    #[test]
    fn adaptive_decisions_are_pure_in_the_recent_window(
        base in any_base(),
        window in 1usize..12,
        shared in prop::collection::vec(
            (0usize..12, 0usize..12).prop_map(|(s, a)| (s, a.min(s))), 1..12),
        old_a in prop::collection::vec(
            (1usize..12, 0usize..12).prop_map(|(s, a)| (s, a.min(s))), 0..8),
        old_b in prop::collection::vec(
            (1usize..12, 0usize..12).prop_map(|(s, a)| (s, a.min(s))), 0..8),
    ) {
        let policy = AdaptivePolicy { window };
        // Only `window` trailing entries may matter, so prefixing
        // arbitrary old entries beyond the window cannot change the
        // decision. (shared is padded to fill the whole window with
        // identical entries.)
        let mut tail = shared.clone();
        while tail.len() < window.max(32) {
            tail.push(*shared.last().expect("nonempty"));
        }
        let build = |old: &[(usize, usize)]| -> AcceptHistory {
            let mut h = AcceptHistory::default();
            for &(s, a) in old.iter().chain(&tail) {
                h.record(s, a);
            }
            h
        };
        let ha = build(&old_a);
        let hb = build(&old_b);
        let da = policy.shape(&ShapeQuery { base: &base, history: &ha, cap: None });
        let db = policy.shape(&ShapeQuery { base: &base, history: &hb, cap: None });
        prop_assert_eq!(&da, &db, "pre-window history leaked into the decision");
        // And the decision is deterministic on repeated queries.
        let again = policy.shape(&ShapeQuery { base: &base, history: &ha, cap: None });
        prop_assert_eq!(&da, &again);
        // Decisions only ever shrink the configured shape.
        prop_assert!(da.step_cost() <= base.step_cost().max(2));
    }

    /// Serving under adaptation == the serial policy-driven engine,
    /// token for token, under preemption, eviction, prefix forks, and
    /// arbitrary tick orders.
    #[test]
    fn served_equals_serial_under_adaptation(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..12, 12..60),
        raw in prop::collection::vec(
            (
                any_engine(),
                prop::collection::vec(1u32..10, 0..3),
                4usize..16,
                prop_oneof![
                    Just(Sampling::Greedy),
                    (0.4f32..1.1).prop_map(Sampling::temperature),
                ],
                any::<u64>(),
                0u64..6,
            ),
            1..8,
        ),
        window in 1usize..12,
        max_active in 1usize..5,
        max_batch in 1usize..4,
        order in prop_oneof![
            Just(TickOrder::RoundRobin),
            Just(TickOrder::ShortestFirst),
            Just(TickOrder::Edf),
            any::<u64>().prop_map(TickOrder::Seeded),
        ],
        preempt in prop_oneof![Just(None), (1u64..4).prop_map(Some)],
        session_cap in prop_oneof![Just(None), (1usize..5).prop_map(Some)],
        fuse in any::<bool>(),
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let policy = AdaptivePolicy { window };
        let shared: Vec<TokenId> = vec![5, 6];

        let requests: Vec<Request> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (engine, suffix, max_tokens, sampling, seed, arrival))| {
                let mut prompt = shared.clone();
                prompt.extend_from_slice(&suffix);
                let cfg = DecodeConfig { max_tokens, sampling, seed, ..Default::default() };
                Request {
                    arrival,
                    deadline: Some(arrival + 30),
                    ..Request::new(i as u64, prompt, engine, cfg)
                }
            })
            .collect();

        let expected: Vec<Vec<TokenId>> = requests
            .iter()
            .map(|r| serial_with_policy(&model, &draft, r, &cost, &policy))
            .collect();

        let cfg = ServeConfig {
            max_active,
            max_batch,
            order,
            preempt_wait: preempt,
            fuse,
            session_cap,
            ..Default::default()
        };
        let mut prefix = model.session();
        prefix.append(&shared);
        let mut engine = ServeEngine::new(&model, cfg)
            .with_draft(&draft)
            .with_policy(&policy);
        // Fork the shared-prefix session per matching request at
        // submit time (the explicit successor of the retired
        // engine-held `with_prefix` plumbing).
        for req in &requests {
            if req.prompt.starts_with(prefix.tokens()) {
                if let Some(fork) = prefix.fork() {
                    engine.submit_with_session(req.clone(), fork);
                    continue;
                }
            }
            engine.submit(req.clone());
        }
        let report = engine.run(&cost);

        prop_assert_eq!(report.completions.len(), requests.len());
        for (c, want) in report.completions.iter().zip(&expected) {
            prop_assert_eq!(
                &c.output.tokens, want,
                "request {} diverged under adaptive serving", c.id
            );
            prop_assert!(c.accepted_tokens <= c.proposed_tokens);
        }
    }
}
