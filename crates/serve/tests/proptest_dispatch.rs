//! Property tests pinning the multi-worker dispatch invariant: for
//! random request mixes, worker counts, and routing policies, every
//! dispatched request's output is **token-for-token identical** to the
//! serial single-session engine run on it alone; a one-worker
//! dispatcher is **tick-identical** to the single-engine streaming
//! loop; and given a fixed (pinned) route assignment the whole report —
//! shedding, deadlines, every tick stamp — reproduces exactly.

use proptest::prelude::*;
use verispec_core::{
    decode_draft_speculative, decode_ntp, decode_speculative, DecodeConfig, DecodeOutput,
};
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, Sampling, TokenId};
use verispec_serve::{
    dispatch_all, DispatchConfig, EngineChoice, Request, RoutePolicy, ServeConfig, ServeEngine,
    TickOrder,
};

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (12usize..28, 2usize..7, 2usize..6, 0usize..5, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_engine() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::Ntp),
        Just(EngineChoice::MedusaChain),
        (1usize..3, 1usize..3).prop_map(|(a, b)| EngineChoice::MedusaTree(vec![a, b])),
        Just(EngineChoice::SyntaxAligned { tree: None }),
        (1usize..3).prop_map(|k| EngineChoice::SyntaxAligned {
            tree: Some(vec![k, k])
        }),
        (1usize..4).prop_map(|gamma| EngineChoice::DraftVerify { gamma }),
    ]
}

fn any_sampling() -> impl Strategy<Value = Sampling> {
    prop_oneof![
        Just(Sampling::Greedy),
        (0.3f32..1.2).prop_map(Sampling::temperature),
    ]
}

fn any_route() -> impl Strategy<Value = RoutePolicy> {
    prop_oneof![
        Just(RoutePolicy::RoundRobin),
        Just(RoutePolicy::JoinShortestQueue),
        Just(RoutePolicy::LeastLoaded),
    ]
}

fn any_order() -> impl Strategy<Value = TickOrder> {
    prop_oneof![
        Just(TickOrder::RoundRobin),
        Just(TickOrder::ShortestFirst),
        any::<u64>().prop_map(TickOrder::Seeded),
        Just(TickOrder::Edf),
    ]
}

/// Per-request raw material: ((engine, prompt, max_tokens),
/// (sampling, seed, arrival, deadline slack)).
type RawRequest = (
    (EngineChoice, Vec<TokenId>, usize),
    (Sampling, u64, u64, Option<u64>),
);

fn any_requests() -> impl Strategy<Value = Vec<RawRequest>> {
    prop::collection::vec(
        (
            (
                any_engine(),
                prop::collection::vec(4u32..10, 1..4),
                1usize..16,
            ),
            (
                any_sampling(),
                any::<u64>(),
                0u64..8,
                prop_oneof![Just(None), (4u64..60).prop_map(Some)],
            ),
        ),
        1..8,
    )
}

fn build_requests(raw: &[RawRequest]) -> Vec<Request> {
    raw.iter()
        .enumerate()
        .map(
            |(i, ((engine, prompt, max_tokens), (sampling, seed, arrival, slack)))| {
                let cfg = DecodeConfig {
                    max_tokens: *max_tokens,
                    sampling: *sampling,
                    seed: *seed,
                    ..Default::default()
                };
                Request {
                    arrival: *arrival,
                    deadline: slack.map(|s| arrival + s),
                    ..Request::new(i as u64, prompt.clone(), engine.clone(), cfg)
                }
            },
        )
        .collect()
}

fn serial_reference(
    model: &MlpLm,
    draft: &NgramLm,
    req: &Request,
    cost: &GpuCostModel,
) -> DecodeOutput {
    match &req.engine {
        EngineChoice::Ntp => decode_ntp(
            model,
            &req.prompt,
            &req.engine.decode_config(&req.cfg),
            cost,
        ),
        EngineChoice::DraftVerify { .. } => {
            let dcfg = req.engine.draft_config(&req.cfg).expect("draft config");
            decode_draft_speculative(model, draft, &req.prompt, &dcfg, cost).0
        }
        _ => decode_speculative(
            model,
            &req.prompt,
            &req.engine.decode_config(&req.cfg),
            cost,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Dispatched == serial, token for token, under any worker count
    /// and routing policy — and every request is accounted for (served
    /// or shed, never lost).
    #[test]
    fn dispatched_outputs_equal_serial_under_any_routing(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in 1usize..5,
        route in any_route(),
        order in any_order(),
        max_active in 1usize..4,
        max_batch in 1usize..3,
        tick_capacity in prop_oneof![Just(None), (2usize..20).prop_map(Some)],
        shed_depth in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let cfg = ServeConfig {
            max_active,
            max_batch,
            order,
            tick_capacity,
            shed_depth,
            ..Default::default()
        };
        let dcfg = DispatchConfig::new(workers, route);
        let report = dispatch_all(&model, Some(&draft), requests.clone(), &cfg, &dcfg, &cost);

        // Nothing lost: every id is either completed or shed, exactly once.
        let mut ids: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        ids.extend(report.shed.iter().map(|s| s.id));
        ids.sort_unstable();
        let mut want_ids: Vec<u64> = requests.iter().map(|r| r.id).collect();
        want_ids.sort_unstable();
        prop_assert_eq!(&ids, &want_ids, "served + shed must cover every request");
        prop_assert_eq!(report.assignments.len(), requests.len());

        // Per-worker stats merge to the fleet stats.
        let mut merged = verispec_serve::ServeStats::default();
        for s in &report.per_worker {
            merged.merge(s);
        }
        prop_assert_eq!(merged, report.stats);

        for c in &report.completions {
            let req = requests.iter().find(|r| r.id == c.id).expect("known id");
            let want = serial_reference(&model, &draft, req, &cost);
            prop_assert_eq!(
                &c.output.tokens, &want.tokens,
                "request {} diverged from serial decode under {} routing on {} workers",
                c.id, dcfg.route.name(), workers
            );
        }

        // The paced drive (routing at arrival time against live queue
        // state — what the bench measures) obeys the same invariant.
        let paced = verispec_serve::Dispatcher::new(&model, cfg.clone(), dcfg.clone())
            .with_draft(&draft)
            .run_paced(requests.clone(), &cost);
        let mut paced_ids: Vec<u64> = paced.completions.iter().map(|c| c.id).collect();
        paced_ids.extend(paced.shed.iter().map(|s| s.id));
        paced_ids.sort_unstable();
        prop_assert_eq!(&paced_ids, &want_ids, "paced: served + shed must cover every request");
        for c in &paced.completions {
            let req = requests.iter().find(|r| r.id == c.id).expect("known id");
            let want = serial_reference(&model, &draft, req, &cost);
            prop_assert_eq!(
                &c.output.tokens, &want.tokens,
                "request {} diverged from serial decode under paced {} routing on {} workers",
                c.id, dcfg.route.name(), workers
            );
        }

        // With one worker, routing is forced, so pacing may not change
        // the schedule either: paced == upfront-fed, tick for tick
        // (arrival-time submission lands each request before the tick
        // that admits it — the sends-before-due streaming property).
        // run_paced serves the arrival-sorted sequence, so the upfront
        // reference must be fed in the same order (queue order breaks
        // ties among simultaneously-ready requests).
        if workers == 1 {
            let mut sorted = requests.clone();
            sorted.sort_by_key(|r| r.arrival);
            let report = dispatch_all(&model, Some(&draft), sorted, &cfg, &dcfg, &cost);
            prop_assert_eq!(&paced.shed, &report.shed);
            prop_assert_eq!(paced.stats.ticks, report.stats.ticks);
            prop_assert_eq!(paced.completions.len(), report.completions.len());
            for (a, b) in paced.completions.iter().zip(&report.completions) {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(
                    a.admitted, b.admitted,
                    "paced@1: request {} admission tick drifted", a.id
                );
                prop_assert_eq!(
                    &a.step_ticks, &b.step_ticks,
                    "paced@1: request {} schedule drifted", a.id
                );
                prop_assert_eq!(a.finished, b.finished);
            }
        }
    }

    /// A one-worker dispatcher is the single streaming engine,
    /// tick for tick: routing degenerates and the lockstep drive adds
    /// zero scheduling noise.
    #[test]
    fn single_worker_dispatch_is_tick_identical_to_run_streaming(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        route in any_route(),
        order in any_order(),
        max_active in 1usize..4,
        shed_depth in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let cfg = ServeConfig {
            max_active,
            max_batch: max_active,
            order,
            shed_depth,
            ..Default::default()
        };

        let (tx, rx) = std::sync::mpsc::channel();
        for req in &requests {
            tx.send(req.clone()).expect("receiver alive");
        }
        drop(tx);
        let mut single = ServeEngine::new(&model, cfg.clone()).with_draft(&draft);
        // Feed the single engine the same upfront pattern.
        let single = {
            for req in &requests {
                single.submit(req.clone());
            }
            single.run(&cost)
        };

        let dcfg = DispatchConfig::new(1, route);
        let dispatched =
            verispec_serve::dispatch_streaming(&model, Some(&draft), rx, &cfg, &dcfg, &cost);

        prop_assert_eq!(single.completions.len(), dispatched.completions.len());
        for (a, b) in single.completions.iter().zip(&dispatched.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.output.tokens, &b.output.tokens);
            prop_assert_eq!(a.submitted, b.submitted);
            prop_assert_eq!(a.admitted, b.admitted, "request {} admission tick", a.id);
            prop_assert_eq!(a.finished, b.finished);
            prop_assert_eq!(&a.step_ticks, &b.step_ticks, "request {} commit ticks", a.id);
        }
        prop_assert_eq!(&single.shed, &dispatched.shed);
        prop_assert_eq!(single.stats.ticks, dispatched.stats.ticks);
        prop_assert!(dispatched.assignments.iter().all(|&(_, w)| w == 0));
    }

    /// Pinning a realized route assignment replays the run exactly:
    /// shedding, deadline outcomes, and every schedule stamp are pure
    /// functions of the assignment.
    #[test]
    fn pinned_assignment_reproduces_shedding_and_deadlines(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        workers in 1usize..4,
        route in any_route(),
        shed_depth in prop_oneof![Just(None), (1usize..3).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let requests = build_requests(&raw);
        let cfg = ServeConfig {
            max_active: 2,
            max_batch: 2,
            shed_depth,
            ..Default::default()
        };
        let first = dispatch_all(
            &model,
            Some(&draft),
            requests.clone(),
            &cfg,
            &DispatchConfig::new(workers, route),
            &cost,
        );
        let pinned = DispatchConfig::new(
            workers,
            RoutePolicy::Pinned(first.assignments.clone()),
        );
        let replay = dispatch_all(&model, Some(&draft), requests, &cfg, &pinned, &cost);

        prop_assert_eq!(&first.assignments, &replay.assignments);
        prop_assert_eq!(&first.shed, &replay.shed, "shedding must replay exactly");
        prop_assert_eq!(first.completions.len(), replay.completions.len());
        for (a, b) in first.completions.iter().zip(&replay.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.output.tokens, &b.output.tokens);
            prop_assert_eq!(&a.step_ticks, &b.step_ticks);
            prop_assert_eq!(a.finished, b.finished);
            prop_assert_eq!(
                a.met_deadline(), b.met_deadline(),
                "request {} deadline outcome must replay", a.id
            );
        }
        prop_assert_eq!(&first.stats, &replay.stats);
        prop_assert_eq!(&first.per_worker, &replay.per_worker);
    }
}
