//! Property tests pinning the serving invariant: for random request
//! mixes (engines, prompts, budgets, seeds, sampling), random scheduler
//! configurations (tick order, batch size, pool size, preemption,
//! session-eviction caps), and prefix-forked admissions, every served
//! request's output is
//! **token-for-token identical** to running the serial single-session
//! engine (`decode_ntp` / `decode_speculative` /
//! `decode_draft_speculative`) on it alone — and no request starves
//! (every request completes, with its service gap within the
//! scheduler's aging bound).

use proptest::prelude::*;
use verispec_core::{
    decode_draft_speculative, decode_ntp, decode_speculative, DecodeConfig, DecodeOutput,
};
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, Sampling, TokenId};
use verispec_serve::{EngineChoice, Request, Scheduler, ServeConfig, ServeEngine, TickOrder};

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (12usize..32, 2usize..8, 2usize..6, 0usize..5, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_engine() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::Ntp),
        Just(EngineChoice::MedusaChain),
        (1usize..3, 1usize..3).prop_map(|(a, b)| EngineChoice::MedusaTree(vec![a, b])),
        Just(EngineChoice::SyntaxAligned { tree: None }),
        (1usize..3).prop_map(|k| EngineChoice::SyntaxAligned {
            tree: Some(vec![k, k])
        }),
        (1usize..4).prop_map(|gamma| EngineChoice::DraftVerify { gamma }),
    ]
}

fn any_sampling() -> impl Strategy<Value = Sampling> {
    prop_oneof![
        Just(Sampling::Greedy),
        (0.3f32..1.2).prop_map(Sampling::temperature),
    ]
}

fn any_order() -> impl Strategy<Value = TickOrder> {
    prop_oneof![
        Just(TickOrder::RoundRobin),
        Just(TickOrder::ShortestFirst),
        any::<u64>().prop_map(TickOrder::Seeded),
    ]
}

/// Per-request raw material: ((engine, prompt suffix, max_tokens),
/// (sampling, seed, arrival, share_prefix)).
type RawRequest = (
    (EngineChoice, Vec<TokenId>, usize),
    (Sampling, u64, u64, bool),
);

fn any_requests() -> impl Strategy<Value = Vec<RawRequest>> {
    prop::collection::vec(
        (
            (
                any_engine(),
                prop::collection::vec(4u32..10, 1..4),
                1usize..20,
            ),
            (any_sampling(), any::<u64>(), 0u64..6, any::<bool>()),
        ),
        1..7,
    )
}

fn serial_reference(
    model: &MlpLm,
    draft: &NgramLm,
    req: &Request,
    cost: &GpuCostModel,
) -> DecodeOutput {
    match &req.engine {
        EngineChoice::Ntp => decode_ntp(
            model,
            &req.prompt,
            &req.engine.decode_config(&req.cfg),
            cost,
        ),
        EngineChoice::DraftVerify { .. } => {
            let dcfg = req.engine.draft_config(&req.cfg).expect("draft config");
            decode_draft_speculative(model, draft, &req.prompt, &dcfg, cost).0
        }
        _ => decode_speculative(
            model,
            &req.prompt,
            &req.engine.decode_config(&req.cfg),
            cost,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Served == serial, token for token, under arbitrary scheduling.
    #[test]
    fn served_outputs_equal_serial_and_nobody_starves(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        max_active in 1usize..5,
        max_batch in 1usize..4,
        order in any_order(),
        preempt in prop_oneof![Just(None), (1u64..4).prop_map(Some)],
        fuse in any::<bool>(),
        session_cap in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();

        // Requests share a common two-token prompt prefix; some are
        // submitted with a session forked from one ingested prefix.
        let shared: Vec<TokenId> = vec![5, 6];
        let requests: Vec<(Request, bool)> = raw
            .into_iter()
            .enumerate()
            .map(|(i, ((engine, suffix, max_tokens), (sampling, seed, arrival, share)))| {
                let mut prompt = shared.clone();
                prompt.extend_from_slice(&suffix);
                let cfg = DecodeConfig { max_tokens, sampling, seed, ..Default::default() };
                (Request { arrival, ..Request::new(i as u64, prompt, engine, cfg) }, share)
            })
            .collect();

        let serve_cfg = ServeConfig {
            max_active,
            max_batch,
            order,
            preempt_wait: preempt,
            fuse,
            session_cap,
            ..Default::default()
        };
        let mut prefix_session = model.session();
        prefix_session.append(&shared);
        let mut engine = ServeEngine::new(&model, serve_cfg.clone()).with_draft(&draft);
        for (req, share) in &requests {
            if *share {
                let fork = prefix_session.fork().expect("mlp sessions fork");
                engine.submit_with_session(req.clone(), fork);
            } else {
                engine.submit(req.clone());
            }
        }
        let report = engine.run(&cost);

        // Everyone completes (no starvation, no lost requests).
        prop_assert_eq!(report.completions.len(), requests.len());
        let bound = Scheduler::new(order, max_active, max_batch).starvation_bound();
        for (c, (req, _)) in report.completions.iter().zip(&requests) {
            let want = serial_reference(&model, &draft, req, &cost);
            prop_assert_eq!(c.id, req.id);
            prop_assert_eq!(
                &c.output.tokens, &want.tokens,
                "request {} tokens diverged from serial", req.id
            );
            prop_assert_eq!(c.output.steps, want.steps, "request {} steps", req.id);
            prop_assert_eq!(&c.output.trace, &want.trace, "request {} trace", req.id);
            prop_assert!(
                c.max_service_gap <= bound + max_active as u64,
                "request {} service gap {} exceeds aging bound {}",
                req.id, c.max_service_gap, bound
            );
        }
    }

    /// Prefix-cached admission == uncached serial, token for token:
    /// random prompt sets with forced shared stems (Zipf-ish: most
    /// prompts extend one of two stems), tight session caps driving
    /// LRU eviction churn, paced ingestion, and the full engine /
    /// sampling / tick-order space. The cache must change scheduling
    /// only — never a single token, step count, or trace entry.
    #[test]
    fn cached_admission_is_bit_identical_to_uncached(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..10, 12..60),
        raw in any_requests(),
        max_active in 1usize..5,
        max_batch in 1usize..4,
        order in any_order(),
        session_cap in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
        ingest_rate in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        fuse in any::<bool>(),
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();

        // Two forced stems: the `share` bit picks which one each
        // request extends, so stems repeat across the set and the trie
        // sees hits, splits, and (under the tight caps) evictions.
        let stems: [Vec<TokenId>; 2] = [vec![5, 6, 7, 8], vec![5, 6, 9]];
        let requests: Vec<Request> = raw
            .into_iter()
            .enumerate()
            .map(|(i, ((engine, suffix, max_tokens), (sampling, seed, arrival, share)))| {
                let mut prompt = stems[usize::from(share)].clone();
                prompt.extend_from_slice(&suffix);
                let cfg = DecodeConfig { max_tokens, sampling, seed, ..Default::default() };
                Request { arrival, ..Request::new(i as u64, prompt, engine, cfg) }
            })
            .collect();

        let serve_cfg = ServeConfig {
            max_active,
            max_batch,
            order,
            fuse,
            session_cap,
            prefix_cache: true,
            ingest_rate,
            ..Default::default()
        };
        let mut engine = ServeEngine::new(&model, serve_cfg).with_draft(&draft);
        for req in &requests {
            engine.submit(req.clone());
        }
        let report = engine.run(&cost);

        prop_assert_eq!(report.completions.len(), requests.len());
        // Every admission went through the cache, and under a session
        // cap the trie never outgrew its residency charge.
        prop_assert_eq!(
            report.stats.prefix_hits + report.stats.prefix_misses,
            requests.len(),
            "every fresh admission is a cache lookup"
        );
        if let Some(cap) = session_cap {
            prop_assert!(
                report.stats.peak_resident_nodes <= cap.max(1) + requests.len(),
                "cache residency {} blew past cap {}",
                report.stats.peak_resident_nodes, cap
            );
        }
        for (c, req) in report.completions.iter().zip(&requests) {
            let want = serial_reference(&model, &draft, req, &cost);
            prop_assert_eq!(c.id, req.id);
            prop_assert_eq!(
                &c.output.tokens, &want.tokens,
                "request {} tokens diverged from uncached serial", req.id
            );
            prop_assert_eq!(c.output.steps, want.steps, "request {} steps", req.id);
            prop_assert_eq!(&c.output.trace, &want.trace, "request {} trace", req.id);
        }
    }
}
