//! Property tests: BitVec arithmetic against a wide-integer reference
//! model, and simulator equivalence on randomly parameterized adders.

use proptest::prelude::*;
use verispec_sim::BitVec;

fn mask(v: u128, w: u32) -> u64 {
    (v & ((1u128 << w) - 1)) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_matches_u128(w in 1u32..=64, a in any::<u64>(), b in any::<u64>()) {
        let m = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let (x, y) = (a & m, b & m);
        let got = BitVec::new(w, x).add(BitVec::new(w, y)).value();
        prop_assert_eq!(got, mask(x as u128 + y as u128, w));
    }

    #[test]
    fn sub_matches_wrapping(w in 1u32..=64, a in any::<u64>(), b in any::<u64>()) {
        let m = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let (x, y) = (a & m, b & m);
        let got = BitVec::new(w, x).sub(BitVec::new(w, y)).value();
        prop_assert_eq!(got, x.wrapping_sub(y) & m);
    }

    #[test]
    fn mul_matches_u128(w in 1u32..=64, a in any::<u64>(), b in any::<u64>()) {
        let m = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let (x, y) = (a & m, b & m);
        let got = BitVec::new(w, x).mul(BitVec::new(w, y)).value();
        prop_assert_eq!(got, mask(x as u128 * y as u128, w));
    }

    #[test]
    fn concat_then_slice_recovers(hw in 1u32..=32, lw in 1u32..=32, a in any::<u64>(), b in any::<u64>()) {
        let hi = BitVec::new(hw, a);
        let lo = BitVec::new(lw, b);
        let c = hi.concat(lo);
        prop_assert_eq!(c.slice(hw + lw - 1, lw).value(), hi.value());
        prop_assert_eq!(c.slice(lw - 1, 0).value(), lo.value());
    }

    #[test]
    fn splice_preserves_other_bits(w in 2u32..=64, v in any::<u64>(), f in any::<u64>()) {
        let msb = w - 1;
        let lsb = w / 2;
        let orig = BitVec::new(w, v);
        let spliced = orig.splice(msb, lsb, BitVec::new(msb - lsb + 1, f));
        // Bits below lsb unchanged.
        if lsb > 0 {
            prop_assert_eq!(spliced.slice(lsb - 1, 0).value(), orig.slice(lsb - 1, 0).value());
        }
        // Field bits replaced.
        let m = if msb - lsb + 1 == 64 { u64::MAX } else { (1 << (msb - lsb + 1)) - 1 };
        prop_assert_eq!(spliced.slice(msb, lsb).value(), f & m);
    }

    #[test]
    fn signed_resize_preserves_value(w in 2u32..=32, v in any::<u64>()) {
        let m = (1u64 << w) - 1;
        let sv = BitVec::new_signed(w, v & m);
        let wide = sv.resize(w + 16);
        prop_assert_eq!(wide.as_i64(), sv.as_i64());
    }

    #[test]
    fn reduce_xor_is_parity(w in 1u32..=64, v in any::<u64>()) {
        let m = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let x = v & m;
        prop_assert_eq!(
            BitVec::new(w, x).reduce_xor().is_true(),
            x.count_ones() % 2 == 1
        );
    }

    #[test]
    fn shifts_match_reference(w in 1u32..=64, v in any::<u64>(), sh in 0u64..80) {
        let m = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let x = v & m;
        let bv = BitVec::new(w, x);
        let amt = BitVec::new(8, sh.min(255));
        let sh_eff = sh.min(255);
        let expect_shl = if sh_eff >= 64 { 0 } else { (x << sh_eff) & m };
        let expect_shr = if sh_eff >= 64 { 0 } else { (x & m) >> sh_eff };
        prop_assert_eq!(bv.shl(amt).value(), expect_shl);
        prop_assert_eq!(bv.shr(amt).value(), expect_shr);
    }
}

// Random-width adder modules simulate identically to u128 arithmetic.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_width_adder_simulates(w in 2u32..=16, a in any::<u64>(), b in any::<u64>()) {
        let src = format!(
            "module add(input [{m}:0] a, input [{m}:0] b, output [{m}:0] s, output c);
               wire [{w}:0] t;
               assign t = {{1'b0, a}} + {{1'b0, b}};
               assign s = t[{m}:0];
               assign c = t[{w}];
             endmodule",
            m = w - 1
        );
        let file = verispec_verilog::parse(&src).expect("parse");
        let design = verispec_sim::elaborate(&file.modules[0]).expect("elab");
        let mut sim = verispec_sim::Sim::new(&design).expect("sim");
        let mask_w = (1u64 << w) - 1;
        let (x, y) = (a & mask_w, b & mask_w);
        sim.set("a", x).expect("set");
        sim.set("b", y).expect("set");
        let total = x as u128 + y as u128;
        prop_assert_eq!(sim.get("s").expect("s"), (total as u64) & mask_w);
        prop_assert_eq!(sim.get("c").expect("c"), ((total >> w) & 1) as u64);
    }
}
