//! Behavioral Verilog simulator and testbench harness for VeriSpec.
//!
//! This crate is the stand-in for Icarus Verilog in the paper's
//! evaluation protocol (§IV-B2): *syntax* correctness is "the design
//! elaborates", *functional* correctness is "the design's outputs match
//! the testbench expectations for all stimuli". It executes the
//! synthesizable RTL subset parsed by `verispec-verilog`:
//!
//! * continuous assignments and `always @(*)` combinational processes,
//!   settled to a fix-point;
//! * `always @(posedge/negedge …)` clocked processes with proper
//!   two-phase non-blocking assignment semantics (including async
//!   resets and derived clocks);
//! * memories (`reg [7:0] mem [0:15]`), `for`/`while`/`repeat` loops
//!   with runaway protection, `case`/`casez`/`casex` with wildcard
//!   matching;
//! * two-state values up to 64 bits with Verilog width/sign semantics.
//!
//! # Examples
//!
//! ```
//! use verispec_sim::{elaborate, Sim};
//!
//! let src = "module counter(input clk, input rst, output reg [3:0] q);
//!              always @(posedge clk) if (rst) q <= 0; else q <= q + 1;
//!            endmodule";
//! let module = &verispec_verilog::parse(src)?.modules[0];
//! let design = elaborate(module)?;
//! let mut sim = Sim::new(&design)?;
//! sim.set("rst", 0)?;
//! for _ in 0..5 {
//!     sim.clock_pulse("clk")?;
//! }
//! assert_eq!(sim.get("q")?, 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod elab;
pub mod harness;
pub mod interp;
pub mod value;

pub use elab::{
    elaborate, elaborate_with_params, Design, Process, Signal, SignalKind, SimError, SimResult,
};
pub use harness::{
    run_combinational, run_sequential, InputVector, Mismatch, OutputVector, ResetSpec, SeqSpec,
    TbResult,
};
pub use interp::Sim;
pub use value::BitVec;

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_verilog::parse;

    fn design_of(src: &str) -> Design {
        let file = parse(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        elaborate(&file.modules[0]).unwrap_or_else(|e| panic!("elab: {e}\n{src}"))
    }

    #[test]
    fn combinational_mux() {
        let d = design_of(
            "module mux(input [3:0] a, b, input sel, output [3:0] y);
               assign y = sel ? b : a;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 3).expect("set");
        sim.set("b", 12).expect("set");
        sim.set("sel", 0).expect("set");
        assert_eq!(sim.get("y").expect("get"), 3);
        sim.set("sel", 1).expect("set");
        assert_eq!(sim.get("y").expect("get"), 12);
    }

    #[test]
    fn always_star_with_case() {
        let d = design_of(
            "module alu(input [1:0] op, input [7:0] a, b, output reg [7:0] y);
               always @(*) begin
                 case (op)
                   2'b00: y = a + b;
                   2'b01: y = a - b;
                   2'b10: y = a & b;
                   default: y = a ^ b;
                 endcase
               end
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 200).expect("set");
        sim.set("b", 100).expect("set");
        for (op, expect) in [(0u64, 44u64), (1, 100), (2, 64), (3, 172)] {
            sim.set("op", op).expect("set");
            assert_eq!(sim.get("y").expect("get"), expect, "op={op}");
        }
    }

    #[test]
    fn clocked_counter_with_sync_reset() {
        let d = design_of(
            "module counter(input clk, rst, en, output reg [3:0] q);
               always @(posedge clk)
                 if (rst) q <= 4'd0;
                 else if (en) q <= q + 1;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("rst", 1).expect("set");
        sim.set("en", 0).expect("set");
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("q").expect("q"), 0);
        sim.set("rst", 0).expect("set");
        sim.set("en", 1).expect("set");
        for i in 1..=20u64 {
            sim.clock_pulse("clk").expect("clk");
            assert_eq!(sim.get("q").expect("q"), i % 16, "cycle {i}");
        }
    }

    #[test]
    fn async_active_low_reset() {
        let d = design_of(
            "module dff(input clk, rst_n, d, output reg q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 1'b0;
                 else q <= d;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("rst_n", 1).expect("set");
        sim.set("d", 1).expect("set");
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("q").expect("q"), 1);
        // Async reset without a clock edge.
        sim.set("rst_n", 0).expect("set");
        assert_eq!(
            sim.get("q").expect("q"),
            0,
            "reset must apply asynchronously"
        );
        // Held in reset across clocks.
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("q").expect("q"), 0);
    }

    #[test]
    fn nonblocking_swap() {
        // The classic NBA test: both registers swap simultaneously.
        let d = design_of(
            "module swap(input clk, output reg a, b);
               initial begin a = 1'b0; b = 1'b1; end
               always @(posedge clk) begin
                 a <= b;
                 b <= a;
               end
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        assert_eq!(sim.get("a").expect("a"), 0);
        assert_eq!(sim.get("b").expect("b"), 1);
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("a").expect("a"), 1);
        assert_eq!(sim.get("b").expect("b"), 0);
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("a").expect("a"), 0);
        assert_eq!(sim.get("b").expect("b"), 1);
    }

    #[test]
    fn memory_write_and_read() {
        let d = design_of(
            "module ram(input clk, we, input [3:0] addr, input [7:0] din, output [7:0] dout);
               reg [7:0] mem [0:15];
               assign dout = mem[addr];
               always @(posedge clk) if (we) mem[addr] <= din;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("we", 1).expect("set");
        sim.set("addr", 5).expect("set");
        sim.set("din", 0xAB).expect("set");
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("dout").expect("dout"), 0xAB);
        sim.set("addr", 6).expect("set");
        assert_eq!(sim.get("dout").expect("dout"), 0, "unwritten cell reads 0");
        sim.set("addr", 5).expect("set");
        sim.set("we", 0).expect("set");
        sim.set("din", 0xCD).expect("set");
        sim.clock_pulse("clk").expect("clk");
        assert_eq!(sim.get("dout").expect("dout"), 0xAB, "write disabled");
    }

    #[test]
    fn for_loop_bit_reverse() {
        let d = design_of(
            "module rev(input [7:0] a, output reg [7:0] y);
               integer i;
               always @(*) begin
                 for (i = 0; i < 8; i = i + 1)
                   y[i] = a[7 - i];
               end
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 0b1100_1010).expect("set");
        assert_eq!(sim.get("y").expect("y"), 0b0101_0011);
    }

    #[test]
    fn casez_priority_encoder() {
        let d = design_of(
            "module penc(input [3:0] req, output reg [1:0] grant, output reg valid);
               always @(*) begin
                 valid = 1'b1;
                 casez (req)
                   4'b1???: grant = 2'd3;
                   4'b01??: grant = 2'd2;
                   4'b001?: grant = 2'd1;
                   4'b0001: grant = 2'd0;
                   default: begin grant = 2'd0; valid = 1'b0; end
                 endcase
               end
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        for (req, grant, valid) in [
            (0b1010u64, 3u64, 1u64),
            (0b0110, 2, 1),
            (0b0011, 1, 1),
            (0b0001, 0, 1),
            (0, 0, 0),
        ] {
            sim.set("req", req).expect("set");
            assert_eq!(sim.get("grant").expect("g"), grant, "req={req:04b}");
            assert_eq!(sim.get("valid").expect("v"), valid, "req={req:04b}");
        }
    }

    #[test]
    fn parameters_resolve_and_override() {
        let src = "module add #(parameter W = 4)(input [W-1:0] a, b, output [W-1:0] s);
                     assign s = a + b;
                   endmodule";
        let file = parse(src).expect("parse");
        let d = elaborate(&file.modules[0]).expect("elab");
        assert_eq!(d.signal(d.signal_id("a").expect("a")).width, 4);
        let d8 = elaborate_with_params(&file.modules[0], &[("W".into(), 8)]).expect("elab");
        assert_eq!(d8.signal(d8.signal_id("a").expect("a")).width, 8);
        let mut sim = Sim::new(&d8).expect("sim");
        sim.set("a", 200).expect("set");
        sim.set("b", 57).expect("set");
        assert_eq!(sim.get("s").expect("s"), 257 % 256);
    }

    #[test]
    fn undeclared_identifier_is_elab_error() {
        let file =
            parse("module bad(input a, output y); assign y = a & ghost; endmodule").expect("parse");
        let err = elaborate(&file.modules[0]).expect_err("must fail");
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn procedural_assign_to_wire_is_elab_error() {
        let file =
            parse("module bad(input a, output y); always @(*) y = a; endmodule").expect("parse");
        let err = elaborate(&file.modules[0]).expect_err("must fail");
        assert!(err.message.contains("wire"), "{err}");
    }

    #[test]
    fn continuous_assign_to_reg_is_elab_error() {
        let file =
            parse("module bad(input a, output reg y); assign y = a; endmodule").expect("parse");
        let err = elaborate(&file.modules[0]).expect_err("must fail");
        assert!(err.message.contains("reg"), "{err}");
    }

    #[test]
    fn instance_is_unsupported() {
        let file = parse("module top(input a, output y); inv u0 (a, y); endmodule").expect("parse");
        let err = elaborate(&file.modules[0]).expect_err("must fail");
        assert!(err.message.contains("instantiation"), "{err}");
    }

    #[test]
    fn oscillating_combinational_loop_errors() {
        let d = design_of("module osc(output y); wire a; assign a = ~a; assign y = a; endmodule");
        assert!(Sim::new(&d).is_err(), "ring oscillator must not settle");
    }

    #[test]
    fn runaway_while_loop_errors() {
        let d = design_of(
            "module hang(input a, output reg y);
               always @(*) begin
                 y = a;
                 while (1'b1) y = ~y;
               end
             endmodule",
        );
        assert!(Sim::new(&d).is_err(), "infinite loop must hit the budget");
    }

    #[test]
    fn non_ansi_ports_simulate() {
        let d = design_of(
            "module f(a, b, y);
               input a, b;
               output y;
               assign y = a ^ b;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 1).expect("set");
        sim.set("b", 1).expect("set");
        assert_eq!(sim.get("y").expect("y"), 0);
    }

    #[test]
    fn shift_register_with_concat() {
        let d = design_of(
            "module sr(input clk, input din, output reg [3:0] q);
               always @(posedge clk) q <= {q[2:0], din};
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        for bit in [1u64, 0, 1, 1] {
            sim.set("din", bit).expect("set");
            sim.clock_pulse("clk").expect("clk");
        }
        assert_eq!(sim.get("q").expect("q"), 0b1011);
    }

    #[test]
    fn harness_combinational_pass_and_fail() {
        let d = design_of("module and2(input a, b, output y); assign y = a & b; endmodule");
        let vectors: Vec<InputVector> = (0..4)
            .map(|i| vec![("a".to_string(), i & 1), ("b".to_string(), (i >> 1) & 1)])
            .collect();
        let good = run_combinational(&d, &vectors, |ins| {
            let a = ins[0].1;
            let b = ins[1].1;
            vec![("y".to_string(), a & b)]
        })
        .expect("run");
        assert!(good.passed);
        assert_eq!(good.cycles_run, 4);

        let bad = run_combinational(&d, &vectors, |ins| {
            let a = ins[0].1;
            let b = ins[1].1;
            vec![("y".to_string(), a | b)] // wrong golden: OR
        })
        .expect("run");
        assert!(!bad.passed);
        assert!(!bad.mismatches.is_empty());
    }

    #[test]
    fn harness_sequential_counter() {
        let d = design_of(
            "module c(input clk, rst, output reg [7:0] q);
               always @(posedge clk) if (rst) q <= 0; else q <= q + 1;
             endmodule",
        );
        let spec = SeqSpec {
            clock: "clk".into(),
            reset: Some(ResetSpec {
                signal: "rst".into(),
                active_low: false,
                cycles: 2,
            }),
        };
        let vectors: Vec<InputVector> = (0..10).map(|_| vec![("rst".to_string(), 0)]).collect();
        let mut count = 0u64;
        let res = run_sequential(&d, &spec, &vectors, |_| {
            count += 1;
            vec![("q".to_string(), count)]
        })
        .expect("run");
        assert!(res.passed, "{:?}", res.mismatches);
    }

    #[test]
    fn derived_clock_divider() {
        let d = design_of(
            "module div(input clk, rst, output reg tick);
               reg [1:0] cnt;
               always @(posedge clk)
                 if (rst) begin cnt <= 0; tick <= 0; end
                 else begin cnt <= cnt + 1; tick <= (cnt == 2'd3); end
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("rst", 1).expect("set");
        sim.clock_pulse("clk").expect("clk");
        sim.set("rst", 0).expect("set");
        let mut ticks = 0;
        for _ in 0..16 {
            sim.clock_pulse("clk").expect("clk");
            ticks += sim.get("tick").expect("tick");
        }
        assert_eq!(ticks, 4, "tick once per 4 cycles");
    }
}

#[cfg(test)]
mod context_width_tests {
    use super::*;
    use verispec_verilog::parse;

    fn design_of(src: &str) -> Design {
        let file = parse(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
        elaborate(&file.modules[0]).unwrap_or_else(|e| panic!("elab: {e}\n{src}"))
    }

    #[test]
    fn carry_captured_without_explicit_extension() {
        // The LRM context rule: RHS computed at LHS width (9 bits), so the
        // carry survives — iverilog-compatible behaviour.
        let d = design_of(
            "module add(input [7:0] a, b, output [7:0] s, output cout);
               assign {cout, s} = a + b;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 200).expect("set");
        sim.set("b", 100).expect("set");
        assert_eq!(sim.get("s").expect("s"), 300 % 256);
        assert_eq!(sim.get("cout").expect("c"), 1);
    }

    #[test]
    fn wider_lhs_widens_the_whole_expression() {
        let d = design_of(
            "module w(input [3:0] a, b, output [15:0] y);
               assign y = a * b;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 15).expect("set");
        sim.set("b", 15).expect("set");
        assert_eq!(
            sim.get("y").expect("y"),
            225,
            "product must not wrap at 4 bits"
        );
    }

    #[test]
    fn comparison_operands_are_self_determined_islands() {
        // (a + b) inside a comparison is sized by the comparison's own
        // operands, not by the 1-bit result context.
        let d = design_of(
            "module c(input [3:0] a, b, output y);
               assign y = (a + b) > 4'd10;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        // 12 + 12 = 24 wraps to 8 at 4 bits: NOT > 10 under Verilog rules.
        sim.set("a", 12).expect("set");
        sim.set("b", 12).expect("set");
        assert_eq!(sim.get("y").expect("y"), 0, "4-bit wrap inside comparison");
        sim.set("a", 6).expect("set");
        sim.set("b", 6).expect("set");
        assert_eq!(sim.get("y").expect("y"), 1);
    }

    #[test]
    fn shift_amount_is_self_determined() {
        let d = design_of(
            "module s(input [7:0] a, input [2:0] n, output [15:0] y);
               assign y = a << n;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 0x80).expect("set");
        sim.set("n", 4).expect("set");
        // Context width 16: the shifted-out bit is retained.
        assert_eq!(sim.get("y").expect("y"), 0x800);
    }

    #[test]
    fn concat_is_a_self_determined_island() {
        let d = design_of(
            "module k(input [3:0] a, output [15:0] y);
               assign y = {a, a};
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 0x9).expect("set");
        assert_eq!(
            sim.get("y").expect("y"),
            0x99,
            "concat stays 8 bits, zero-extended"
        );
    }

    #[test]
    fn ternary_branches_share_assignment_context() {
        let d = design_of(
            "module t(input sel, input [3:0] a, b, output [7:0] y);
               assign y = sel ? (a + b) : (a * b);
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 12).expect("set");
        sim.set("b", 13).expect("set");
        sim.set("sel", 1).expect("set");
        assert_eq!(sim.get("y").expect("y"), 25, "sum at 8-bit context");
        sim.set("sel", 0).expect("set");
        assert_eq!(sim.get("y").expect("y"), 156, "product at 8-bit context");
    }

    #[test]
    fn subtraction_borrow_visible_in_wider_context() {
        let d = design_of(
            "module b(input [3:0] a, b, output [4:0] y);
               assign y = a - b;
             endmodule",
        );
        let mut sim = Sim::new(&d).expect("sim");
        sim.set("a", 2).expect("set");
        sim.set("b", 3).expect("set");
        // 2 - 3 at 5-bit context = 0x1F.
        assert_eq!(sim.get("y").expect("y"), 0x1F);
    }
}

#[cfg(test)]
mod driver_conflict_tests {
    use super::*;
    use verispec_verilog::parse;

    #[test]
    fn double_continuous_drive_is_elab_error() {
        let file = parse(
            "module bad(input a, b, output y);
               assign y = a;
               assign y = b;
             endmodule",
        )
        .expect("parse");
        let err = elaborate(&file.modules[0]).expect_err("must fail");
        assert!(err.message.contains("continuous drivers"), "{err}");
    }

    #[test]
    fn disjoint_bit_drivers_are_legal() {
        let file = parse(
            "module ok(input a, b, output [1:0] y);
               assign y[0] = a;
               assign y[1] = b;
             endmodule",
        )
        .expect("parse");
        assert!(elaborate(&file.modules[0]).is_ok());
    }

    #[test]
    fn wire_initializer_plus_assign_conflicts() {
        let file = parse(
            "module bad(input a, output y);
               wire w = a;
               assign w = ~a;
               assign y = w;
             endmodule",
        )
        .expect("parse");
        assert!(elaborate(&file.modules[0]).is_err());
    }
}
