//! The behavioral interpreter: evaluates an elaborated [`Design`] with
//! two-state values, combinational fix-point settling, and two-phase
//! non-blocking updates on clock edges.
//!
//! Scheduling model (a deterministic subset of the Verilog stratified
//! event queue, sufficient for synthesizable RTL):
//!
//! 1. [`Sim::new`] zero-initializes signals (or their declared
//!    initializers), runs `initial` blocks once, then settles.
//! 2. [`Sim::set`] changes an input and calls [`Sim::propagate`]:
//!    combinational processes re-run to a fix-point, then any clocked
//!    process whose event expression saw a matching edge executes —
//!    blocking assignments apply immediately, non-blocking assignments
//!    are buffered and applied together afterwards — and the loop
//!    repeats until no further edges fire (this handles derived clocks).
//!
//! Runtime faults (division handled as 0, reversed part selects,
//! statement-budget exhaustion from runaway loops, width overflows in
//! concatenation) surface as [`SimError`]s; the harness reports them as
//! functional failures.

use crate::elab::{Design, Process, SignalId, SignalKind, SimError, SimResult};
use crate::value::BitVec;
use verispec_verilog::ast::{
    BinaryOp, CaseKind, Edge, Expr, LValue, Literal, Range, Stmt, UnaryOp,
};

/// Per-activation statement budget; a single process exceeding this is
/// reported as a runaway loop.
const STMT_BUDGET: usize = 200_000;

/// Cap on propagate rounds (edge cascades) per input change.
const EDGE_ROUNDS: usize = 64;

/// Cap on combinational settle sweeps per round.
const SETTLE_SWEEPS: usize = 128;

/// A running simulation of one design.
#[derive(Debug, Clone)]
pub struct Sim<'d> {
    design: &'d Design,
    values: Vec<BitVec>,
    mems: Vec<Option<Vec<BitVec>>>,
    /// Snapshot of event-source signals for edge detection.
    edge_snapshot: Vec<(SignalId, bool)>,
}

/// A buffered non-blocking write, resolved at schedule time.
#[derive(Debug, Clone)]
enum WriteOp {
    Full(SignalId, BitVec),
    Bits(SignalId, u32, u32, BitVec),
    Mem(SignalId, u64, BitVec),
}

impl<'d> Sim<'d> {
    /// Initializes state, runs `initial` blocks, and settles.
    ///
    /// # Errors
    ///
    /// Propagates runtime faults from `initial` blocks or settling.
    pub fn new(design: &'d Design) -> SimResult<Self> {
        let mut values = Vec::with_capacity(design.signals().len());
        let mut mems = Vec::with_capacity(design.signals().len());
        for sig in design.signals() {
            let v = sig.init.unwrap_or_else(|| BitVec::zero(sig.width));
            values.push(v.with_signed(sig.signed));
            mems.push(match sig.kind {
                SignalKind::Memory { depth, .. } => {
                    Some(vec![BitVec::zero(sig.width); depth as usize])
                }
                _ => None,
            });
        }
        let mut sim = Self {
            design,
            values,
            mems,
            edge_snapshot: Vec::new(),
        };
        // Run initial blocks once (blocking semantics).
        for p in &design.processes {
            if let Process::Initial { body } = p {
                let mut budget = STMT_BUDGET;
                let mut nba = Vec::new();
                sim.exec_stmt(body, &mut nba, &mut budget)?;
                sim.apply_writes(nba);
            }
        }
        sim.settle()?;
        sim.edge_snapshot = sim.snapshot_event_sources();
        Ok(sim)
    }

    /// The design being simulated.
    pub fn design(&self) -> &Design {
        self.design
    }

    /// Reads a signal's current value.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is not a signal.
    pub fn get(&self, name: &str) -> SimResult<u64> {
        let id = self
            .design
            .signal_id(name)
            .ok_or_else(|| SimError::new(format!("no signal `{name}`")))?;
        Ok(self.values[id].value())
    }

    /// Sets an input and propagates (settle + edge-triggered processes).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown names, non-input targets, or runtime
    /// faults during propagation.
    pub fn set(&mut self, name: &str, value: u64) -> SimResult<()> {
        let id = self
            .design
            .signal_id(name)
            .ok_or_else(|| SimError::new(format!("no signal `{name}`")))?;
        let sig = self.design.signal(id);
        if sig.dir != Some(verispec_verilog::ast::Direction::Input) {
            return Err(SimError::new(format!("`{name}` is not an input port")));
        }
        self.values[id] = BitVec::new(sig.width, value).with_signed(sig.signed);
        self.propagate()
    }

    /// Pulses `clock` low→high→low, propagating after each transition.
    ///
    /// # Errors
    ///
    /// See [`Sim::set`].
    pub fn clock_pulse(&mut self, clock: &str) -> SimResult<()> {
        self.set(clock, 1)?;
        self.set(clock, 0)
    }

    /// Runs combinational processes to a fix-point, then fires clocked
    /// processes whose event sources changed, repeating until quiescent.
    ///
    /// # Errors
    ///
    /// Returns an error if the design oscillates or a process faults.
    pub fn propagate(&mut self) -> SimResult<()> {
        let design = self.design;
        for _round in 0..EDGE_ROUNDS {
            self.settle()?;
            let now = self.snapshot_event_sources();
            let triggered = self.detect_edges(&now);
            self.edge_snapshot = now;
            if triggered.is_empty() {
                return Ok(());
            }
            let mut nba = Vec::new();
            for pi in triggered {
                if let Process::Clocked { body, .. } = &design.processes[pi] {
                    let mut budget = STMT_BUDGET;
                    self.exec_stmt(body, &mut nba, &mut budget)?;
                }
            }
            self.apply_writes(nba);
        }
        Err(SimError::new(
            "edge cascade did not quiesce (derived-clock loop?)",
        ))
    }

    /// Evaluates continuous assignments and combinational always blocks
    /// until no signal changes.
    ///
    /// # Errors
    ///
    /// Returns an error on oscillation or runtime faults.
    pub fn settle(&mut self) -> SimResult<()> {
        let design = self.design;
        for _ in 0..SETTLE_SWEEPS {
            let before = self.values.clone();
            for p in &design.processes {
                match p {
                    Process::Assign { lhs, rhs } => {
                        let v = self.eval_for_assign(lhs, rhs)?;
                        self.write_lvalue_now(lhs, v)?;
                    }
                    Process::Comb { body } => {
                        let mut budget = STMT_BUDGET;
                        // Combinational always blocks use blocking
                        // assignments; NBAs inside them are applied at the
                        // end of the activation.
                        let mut nba = Vec::new();
                        self.exec_stmt(body, &mut nba, &mut budget)?;
                        self.apply_writes(nba);
                    }
                    _ => {}
                }
            }
            if self.values == before {
                return Ok(());
            }
        }
        Err(SimError::new(
            "combinational logic did not settle (oscillation)",
        ))
    }

    fn snapshot_event_sources(&self) -> Vec<(SignalId, bool)> {
        let mut snap = Vec::new();
        for p in &self.design.processes {
            if let Process::Clocked { events, .. } = p {
                for &(sig, _) in events {
                    snap.push((sig, self.values[sig].is_true()));
                }
            }
        }
        snap
    }

    /// Indices of clocked processes with a matching edge between the
    /// stored snapshot and `now`.
    fn detect_edges(&self, now: &[(SignalId, bool)]) -> Vec<usize> {
        // Rebuild the per-process mapping in the same order as
        // snapshot_event_sources.
        let mut triggered = Vec::new();
        let mut cursor = 0usize;
        for (pi, p) in self.design.processes.iter().enumerate() {
            if let Process::Clocked { events, .. } = p {
                let mut fire = false;
                for &(_, edge) in events {
                    let old = self
                        .edge_snapshot
                        .get(cursor)
                        .map(|&(_, v)| v)
                        .unwrap_or(false);
                    let new = now[cursor].1;
                    cursor += 1;
                    let matches = match edge {
                        Edge::Pos => !old && new,
                        Edge::Neg => old && !new,
                    };
                    fire |= matches;
                }
                if fire {
                    triggered.push(pi);
                }
            }
        }
        triggered
    }

    fn apply_writes(&mut self, writes: Vec<WriteOp>) {
        for w in writes {
            match w {
                WriteOp::Full(id, v) => {
                    let sig = self.design.signal(id);
                    self.values[id] = v.resize(sig.width).with_signed(sig.signed);
                }
                WriteOp::Bits(id, msb, lsb, v) => {
                    self.values[id] = self.values[id].splice(msb, lsb, v);
                }
                WriteOp::Mem(id, addr, v) => {
                    if let SignalKind::Memory { depth, lo } = self.design.signal(id).kind {
                        if addr >= lo && addr - lo < depth as u64 {
                            let w = self.design.signal(id).width;
                            if let Some(mem) = &mut self.mems[id] {
                                mem[(addr - lo) as usize] = v.resize(w);
                            }
                        }
                        // Out-of-range writes are dropped (x-address in
                        // four-state Verilog).
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        nba: &mut Vec<WriteOp>,
        budget: &mut usize,
    ) -> SimResult<()> {
        if *budget == 0 {
            return Err(SimError::new("statement budget exceeded (runaway loop?)"));
        }
        *budget -= 1;
        match stmt {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    self.exec_stmt(s, nba, budget)?;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.is_true() {
                    self.exec_stmt(then_branch, nba, budget)?;
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, nba, budget)?;
                }
            }
            Stmt::Case {
                kind,
                scrutinee,
                arms,
                default,
            } => {
                let scrut = self.eval(scrutinee)?;
                let mut matched = false;
                'arms: for arm in arms {
                    for label in &arm.labels {
                        if self.case_label_matches(*kind, &scrut, label)? {
                            self.exec_stmt(&arm.body, nba, budget)?;
                            matched = true;
                            break 'arms;
                        }
                    }
                }
                if !matched {
                    if let Some(d) = default {
                        self.exec_stmt(d, nba, budget)?;
                    }
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.exec_stmt(init, nba, budget)?;
                while self.eval(cond)?.is_true() {
                    self.exec_stmt(body, nba, budget)?;
                    self.exec_stmt(step, nba, budget)?;
                    if *budget == 0 {
                        return Err(SimError::new("statement budget exceeded in for loop"));
                    }
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.is_true() {
                    self.exec_stmt(body, nba, budget)?;
                    if *budget == 0 {
                        return Err(SimError::new("statement budget exceeded in while loop"));
                    }
                }
            }
            Stmt::Repeat { count, body } => {
                let n = self.eval(count)?.value();
                for _ in 0..n {
                    self.exec_stmt(body, nba, budget)?;
                    if *budget == 0 {
                        return Err(SimError::new("statement budget exceeded in repeat loop"));
                    }
                }
            }
            Stmt::Blocking { lhs, rhs } => {
                let v = self.eval_for_assign(lhs, rhs)?;
                self.write_lvalue_now(lhs, v)?;
            }
            Stmt::NonBlocking { lhs, rhs } => {
                let v = self.eval_for_assign(lhs, rhs)?;
                self.schedule_lvalue(lhs, v, nba)?;
            }
            Stmt::Null => {}
        }
        Ok(())
    }

    fn case_label_matches(
        &mut self,
        kind: CaseKind,
        scrut: &BitVec,
        label: &Expr,
    ) -> SimResult<bool> {
        if let Expr::Number(lit) = label {
            let wildcard = wildcard_mask(kind, lit);
            if wildcard != 0 {
                let w = scrut.width().max(lit.effective_width());
                let care = !wildcard;
                let s = scrut.resize(w).value() & care;
                let l = lit.value & care;
                return Ok(s == l);
            }
        }
        let lv = self.eval(label)?;
        Ok(scrut.eq(lv).is_true())
    }

    // ------------------------------------------------------------------
    // L-value writes
    // ------------------------------------------------------------------

    fn write_lvalue_now(&mut self, lv: &LValue, value: BitVec) -> SimResult<()> {
        let mut ops = Vec::new();
        self.resolve_lvalue(lv, value, &mut ops)?;
        self.apply_writes(ops);
        Ok(())
    }

    fn schedule_lvalue(
        &mut self,
        lv: &LValue,
        value: BitVec,
        nba: &mut Vec<WriteOp>,
    ) -> SimResult<()> {
        self.resolve_lvalue(lv, value, nba)
    }

    /// Resolves an l-value into concrete write operations, evaluating
    /// index expressions against current state.
    fn resolve_lvalue(
        &mut self,
        lv: &LValue,
        value: BitVec,
        out: &mut Vec<WriteOp>,
    ) -> SimResult<()> {
        match lv {
            LValue::Ident(name) => {
                let id = self.lookup(name)?;
                out.push(WriteOp::Full(id, value));
            }
            LValue::Bit(name, idx) => {
                let id = self.lookup(name)?;
                let i = self.eval(idx)?.value();
                match self.design.signal(id).kind {
                    SignalKind::Memory { .. } => out.push(WriteOp::Mem(id, i, value)),
                    _ => {
                        let w = self.design.signal(id).width as u64;
                        if i < w {
                            out.push(WriteOp::Bits(id, i as u32, i as u32, value));
                        }
                        // Out-of-range bit writes are dropped.
                    }
                }
            }
            LValue::Part(name, range) => {
                let id = self.lookup(name)?;
                let (msb, lsb) = self.eval_range(range)?;
                out.push(WriteOp::Bits(id, msb, lsb, value));
            }
            LValue::IndexedPart {
                name,
                base,
                width,
                ascending,
            } => {
                let id = self.lookup(name)?;
                let b = self.eval(base)?.value() as u32;
                let w = self.eval(width)?.value() as u32;
                if w == 0 {
                    return Err(SimError::new("zero-width part select"));
                }
                let (msb, lsb) = if *ascending {
                    (b + w - 1, b)
                } else {
                    (b, b.saturating_sub(w - 1))
                };
                out.push(WriteOp::Bits(id, msb, lsb, value));
            }
            LValue::Concat(parts) => {
                // Distribute value bits MSB-first across the parts.
                let widths: Vec<u32> = parts
                    .iter()
                    .map(|p| self.lvalue_width(p))
                    .collect::<SimResult<_>>()?;
                let total: u32 = widths.iter().sum();
                let value = value.resize(total);
                let mut hi = total;
                for (p, w) in parts.iter().zip(widths) {
                    let lo = hi - w;
                    let field = value.slice(hi - 1, lo);
                    self.resolve_lvalue(p, field, out)?;
                    hi = lo;
                }
            }
        }
        Ok(())
    }

    fn lvalue_width(&mut self, lv: &LValue) -> SimResult<u32> {
        Ok(match lv {
            LValue::Ident(name) => {
                let id = self.lookup(name)?;
                self.design.signal(id).width
            }
            LValue::Bit(name, _) => {
                let id = self.lookup(name)?;
                match self.design.signal(id).kind {
                    SignalKind::Memory { .. } => self.design.signal(id).width,
                    _ => 1,
                }
            }
            LValue::Part(_, range) => {
                let (msb, lsb) = self.eval_range(range)?;
                msb - lsb + 1
            }
            LValue::IndexedPart { width, .. } => self.eval(width)?.value() as u32,
            LValue::Concat(parts) => {
                let mut total = 0u32;
                for p in parts {
                    total += self.lvalue_width(p)?;
                }
                total
            }
        })
    }

    fn eval_range(&mut self, range: &Range) -> SimResult<(u32, u32)> {
        let msb = self.eval(&range.msb)?.value();
        let lsb = self.eval(&range.lsb)?.value();
        if msb < lsb {
            return Err(SimError::new(format!("reversed part select [{msb}:{lsb}]")));
        }
        if msb >= 64 {
            return Err(SimError::new(format!(
                "part select [{msb}:{lsb}] out of range"
            )));
        }
        Ok((msb as u32, lsb as u32))
    }

    fn lookup(&self, name: &str) -> SimResult<SignalId> {
        self.design
            .signal_id(name)
            .ok_or_else(|| SimError::new(format!("`{name}` is not declared")))
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    /// Evaluates the right-hand side of an assignment with Verilog's
    /// context-determined width rules: arithmetic on the RHS is carried
    /// out at `max(lhs width, rhs self-determined width)`, so idioms like
    /// `assign {cout, s} = a + b;` capture the carry exactly as iverilog
    /// would.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sim::eval`], plus widths above 64 bits.
    pub fn eval_for_assign(&mut self, lhs: &LValue, rhs: &Expr) -> SimResult<BitVec> {
        let lw = self.lvalue_width(lhs)?;
        let rw = self.self_width(rhs)?;
        let ctx = lw.max(rw);
        if ctx > 64 {
            return Err(SimError::new(format!(
                "assignment context width {ctx} exceeds the 64-bit limit"
            )));
        }
        self.eval_ctx(rhs, ctx)
    }

    /// The self-determined width of an expression (IEEE 1364 Table 5-22,
    /// restricted to the supported subset).
    fn self_width(&mut self, e: &Expr) -> SimResult<u32> {
        use verispec_verilog::ast::BinaryOp as B;
        use verispec_verilog::ast::UnaryOp as U;
        Ok(match e {
            Expr::Number(l) => l.effective_width(),
            Expr::Ident(name) => {
                if let Some(id) = self.design.signal_id(name) {
                    self.design.signal(id).width
                } else if let Some(v) = self.design.params.get(name) {
                    v.width()
                } else {
                    return Err(SimError::new(format!("`{name}` is not declared")));
                }
            }
            Expr::Unary(op, a) => match op {
                U::Plus | U::Minus | U::BitNot => self.self_width(a)?,
                _ => 1, // logical not and reductions
            },
            Expr::Binary(op, a, b) => match op {
                B::Add
                | B::Sub
                | B::Mul
                | B::Div
                | B::Mod
                | B::BitAnd
                | B::BitOr
                | B::BitXor
                | B::BitXnor => self.self_width(a)?.max(self.self_width(b)?),
                B::Shl | B::Shr | B::AShl | B::AShr | B::Pow => self.self_width(a)?,
                _ => 1, // comparisons, logical and/or
            },
            Expr::Ternary(_, t, f) => self.self_width(t)?.max(self.self_width(f)?),
            Expr::Bit(name, _) => {
                let id = self.lookup(name)?;
                match self.design.signal(id).kind {
                    SignalKind::Memory { .. } => self.design.signal(id).width,
                    _ => 1,
                }
            }
            Expr::Part(_, range) => {
                let (msb, lsb) = self.eval_range(range)?;
                msb - lsb + 1
            }
            Expr::IndexedPart { width, .. } => {
                let w = self.eval(width)?.value();
                if w == 0 || w > 64 {
                    return Err(SimError::new("bad indexed part-select width"));
                }
                w as u32
            }
            Expr::Concat(items) => {
                let mut total = 0u32;
                for item in items {
                    total = total.saturating_add(self.self_width(item)?);
                }
                total
            }
            Expr::Repeat(count, items) => {
                let n = self.eval(count)?.value().min(65) as u32;
                let mut one = 0u32;
                for item in items {
                    one = one.saturating_add(self.self_width(item)?);
                }
                one.saturating_mul(n)
            }
            Expr::SysCall(_, args) => match args.as_slice() {
                [a] => self.self_width(a)?,
                _ => 32,
            },
        })
    }

    /// Evaluates an expression against current state at its
    /// self-determined width.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported system calls, width overflows,
    /// and reversed part selects.
    pub fn eval(&mut self, e: &Expr) -> SimResult<BitVec> {
        let w = self.self_width(e)?;
        if w == 0 || w > 64 {
            return Err(SimError::new(format!("expression width {w} unsupported")));
        }
        self.eval_ctx(e, w)
    }

    /// Evaluates `e` under a context width: context-determined operands
    /// (arithmetic, bitwise, ternary branches, unary +/-/~) are widened
    /// to `ctx` *before* the operation; self-determined positions
    /// (comparison operands, shift amounts, concatenations, indices,
    /// reduction operands) are evaluated at their own width.
    fn eval_ctx(&mut self, e: &Expr, ctx: u32) -> SimResult<BitVec> {
        match e {
            Expr::Number(l) => Ok(literal_value(l).resize(ctx)),
            Expr::Ident(name) => {
                if let Some(id) = self.design.signal_id(name) {
                    Ok(self.values[id].resize(ctx))
                } else if let Some(v) = self.design.params.get(name) {
                    Ok(v.resize(ctx))
                } else {
                    Err(SimError::new(format!("`{name}` is not declared")))
                }
            }
            Expr::Unary(op, a) => Ok(match op {
                // Context-determined operand.
                UnaryOp::Plus => self.eval_ctx(a, ctx)?,
                UnaryOp::Minus => self.eval_ctx(a, ctx)?.neg(),
                UnaryOp::BitNot => self.eval_ctx(a, ctx)?.not(),
                // Self-determined operand, 1-bit result widened to ctx.
                UnaryOp::Not => BitVec::from_bool(!self.eval(a)?.is_true()).resize(ctx),
                UnaryOp::RedAnd => self.eval(a)?.reduce_and().resize(ctx),
                UnaryOp::RedOr => self.eval(a)?.reduce_or().resize(ctx),
                UnaryOp::RedXor => self.eval(a)?.reduce_xor().resize(ctx),
                UnaryOp::RedNand => self.eval(a)?.reduce_and().not().resize(ctx),
                UnaryOp::RedNor => self.eval(a)?.reduce_or().not().resize(ctx),
                UnaryOp::RedXnor => self.eval(a)?.reduce_xor().not().resize(ctx),
            }),
            Expr::Binary(op, a, b) => {
                use BinaryOp::*;
                match op {
                    // Context-determined: both operands widened to ctx.
                    Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => {
                        let x = self.eval_ctx(a, ctx)?;
                        let y = self.eval_ctx(b, ctx)?;
                        Ok(match op {
                            Add => x.add(y),
                            Sub => x.sub(y),
                            Mul => x.mul(y),
                            Div => x.div(y),
                            Mod => x.rem(y),
                            BitAnd => x.and(y),
                            BitOr => x.or(y),
                            BitXor => x.xor(y),
                            _ => x.xor(y).not(),
                        })
                    }
                    // Left operand context-determined, right self-determined.
                    Shl | AShl | Shr | AShr | Pow => {
                        let x = self.eval_ctx(a, ctx)?;
                        let y = self.eval(b)?;
                        Ok(match op {
                            Shl | AShl => x.shl(y),
                            Shr => x.shr(y),
                            AShr => x.ashr(y),
                            _ => x.pow(y),
                        })
                    }
                    // Comparisons: operands sized to their common width,
                    // 1-bit result widened to ctx.
                    Lt | Le | Gt | Ge | Eq | Ne | CaseEq | CaseNe => {
                        let w = self.self_width(a)?.max(self.self_width(b)?).min(64);
                        let x = self.eval_ctx(a, w)?;
                        let y = self.eval_ctx(b, w)?;
                        let r = match op {
                            Lt => x.lt(y),
                            Le => BitVec::from_bool(!y.lt(x).is_true()),
                            Gt => y.lt(x),
                            Ge => BitVec::from_bool(!x.lt(y).is_true()),
                            Eq | CaseEq => x.eq(y),
                            _ => BitVec::from_bool(!x.eq(y).is_true()),
                        };
                        Ok(r.resize(ctx))
                    }
                    // Logical: operands self-determined, boolean result.
                    LogAnd => {
                        let x = self.eval(a)?.is_true();
                        let y = self.eval(b)?.is_true();
                        Ok(BitVec::from_bool(x && y).resize(ctx))
                    }
                    LogOr => {
                        let x = self.eval(a)?.is_true();
                        let y = self.eval(b)?.is_true();
                        Ok(BitVec::from_bool(x || y).resize(ctx))
                    }
                }
            }
            Expr::Ternary(c, t, f) => {
                // Condition is self-determined; branches share the context.
                if self.eval(c)?.is_true() {
                    self.eval_ctx(t, ctx)
                } else {
                    self.eval_ctx(f, ctx)
                }
            }
            Expr::Bit(name, idx) => {
                let id = self.lookup(name)?;
                let i = self.eval(idx)?.value();
                let v = match self.design.signal(id).kind {
                    SignalKind::Memory { depth, lo } => {
                        if i >= lo && i - lo < depth as u64 {
                            self.mems[id].as_ref().expect("memory storage")[(i - lo) as usize]
                        } else {
                            BitVec::zero(self.design.signal(id).width)
                        }
                    }
                    _ => self.values[id].bit(i.min(u32::MAX as u64) as u32),
                };
                Ok(v.resize(ctx))
            }
            Expr::Part(name, range) => {
                let id = self.lookup(name)?;
                let (msb, lsb) = self.eval_range(range)?;
                Ok(self.values[id].slice(msb, lsb).resize(ctx))
            }
            Expr::IndexedPart {
                name,
                base,
                width,
                ascending,
            } => {
                let id = self.lookup(name)?;
                let b = self.eval(base)?.value() as u32;
                let w = self.eval(width)?.value() as u32;
                if w == 0 || w > 64 {
                    return Err(SimError::new("bad indexed part-select width"));
                }
                let (msb, lsb) = if *ascending {
                    (b + w - 1, b)
                } else {
                    (b, b.saturating_sub(w - 1))
                };
                Ok(self.values[id].slice(msb, lsb).resize(ctx))
            }
            Expr::Concat(items) => {
                // Concatenations are self-determined islands.
                let mut acc: Option<BitVec> = None;
                for item in items {
                    let v = self.eval(item)?;
                    acc = Some(match acc {
                        None => v,
                        Some(a) => {
                            if a.width() + v.width() > 64 {
                                return Err(SimError::new("concatenation exceeds 64 bits"));
                            }
                            a.concat(v)
                        }
                    });
                }
                Ok(acc
                    .ok_or_else(|| SimError::new("empty concatenation"))?
                    .resize(ctx))
            }
            Expr::Repeat(count, items) => {
                let n = self.eval(count)?.value();
                let mut acc: Option<BitVec> = None;
                for _ in 0..n {
                    for item in items {
                        let v = self.eval(item)?;
                        acc = Some(match acc {
                            None => v,
                            Some(a) => {
                                if a.width() + v.width() > 64 {
                                    return Err(SimError::new("replication exceeds 64 bits"));
                                }
                                a.concat(v)
                            }
                        });
                    }
                }
                Ok(acc
                    .ok_or_else(|| SimError::new("zero-count replication"))?
                    .resize(ctx))
            }
            Expr::SysCall(name, args) => match (name.as_str(), args.as_slice()) {
                // $signed/$unsigned change interpretation at the operand's
                // self width, then context extension applies.
                ("$signed", [a]) => Ok(self.eval(a)?.with_signed(true).resize(ctx)),
                ("$unsigned", [a]) => Ok(self.eval(a)?.with_signed(false).resize(ctx)),
                _ => Err(SimError::new(format!(
                    "system call `{name}` is not supported in expressions"
                ))),
            },
        }
    }
}

/// Two-state value of a literal (x/z bits read 0).
fn literal_value(l: &Literal) -> BitVec {
    BitVec::new(l.effective_width(), l.value).with_signed(l.signed)
}

/// Bits of a case label that are wildcards under the given case kind.
fn wildcard_mask(kind: CaseKind, lit: &Literal) -> u64 {
    match kind {
        CaseKind::Case => 0,
        CaseKind::Casez => lit.z_mask,
        CaseKind::Casex => lit.x_mask | lit.z_mask,
    }
}
