//! Two-state bit-vector values (widths 1..=64) with Verilog semantics:
//! width masking on every operation, optional signedness, reductions,
//! shifts, concatenation, and part selects.
//!
//! The simulator is two-state (0/1): registers initialize to zero and
//! `x`/`z` literal digits participate only as wildcards in `casez`/`casex`
//! matching. DESIGN.md documents this as part of the iverilog
//! substitution — pass/fail functional comparison against a golden model
//! does not require four-state simulation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A sized two-state value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    width: u32,
    value: u64,
    signed: bool,
}

impl BitVec {
    /// Creates a value of `width` bits, masking `value` accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32, value: u64) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width {width} out of range 1..=64"
        );
        Self {
            width,
            value: value & Self::mask_for(width),
            signed: false,
        }
    }

    /// Creates a signed value (affects comparisons, `>>>`, and widening).
    pub fn new_signed(width: u32, value: u64) -> Self {
        let mut v = Self::new(width, value);
        v.signed = true;
        v
    }

    /// A 1-bit value from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Self::new(1, b as u64)
    }

    /// A zero of the given width.
    pub fn zero(width: u32) -> Self {
        Self::new(width, 0)
    }

    fn mask_for(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The raw (masked, unsigned) value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Whether the value carries the signed flag.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The value interpreted according to the signed flag.
    pub fn as_i64(&self) -> i64 {
        if self.signed && self.msb() {
            // Sign-extend.
            (self.value | !Self::mask_for(self.width)) as i64
        } else {
            self.value as i64
        }
    }

    /// The most significant bit.
    pub fn msb(&self) -> bool {
        (self.value >> (self.width - 1)) & 1 == 1
    }

    /// Truthiness: any bit set.
    pub fn is_true(&self) -> bool {
        self.value != 0
    }

    /// Returns this value with the signed flag set/cleared.
    pub fn with_signed(mut self, signed: bool) -> Self {
        self.signed = signed;
        self
    }

    /// Resizes to `width`, zero- or sign-extending per the signed flag,
    /// truncating high bits when narrowing.
    pub fn resize(&self, width: u32) -> Self {
        let extended = if self.signed && self.msb() && width > self.width {
            self.value | !Self::mask_for(self.width)
        } else {
            self.value
        };
        Self {
            width,
            value: extended & Self::mask_for(width),
            signed: self.signed,
        }
    }

    /// Extracts bit `idx` (0 = LSB); out-of-range reads yield 0, matching
    /// the two-state treatment of x.
    pub fn bit(&self, idx: u32) -> Self {
        let b = if idx < self.width {
            (self.value >> idx) & 1
        } else {
            0
        };
        Self::new(1, b)
    }

    /// Extracts bits `[msb:lsb]` (inclusive); out-of-range bits read 0.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb`.
    pub fn slice(&self, msb: u32, lsb: u32) -> Self {
        assert!(msb >= lsb, "slice [{msb}:{lsb}] reversed");
        let width = msb - lsb + 1;
        assert!(width <= 64, "slice width {width} too wide");
        let shifted = if lsb >= 64 { 0 } else { self.value >> lsb };
        Self::new(width, shifted)
    }

    /// Writes `src` into bits `[msb:lsb]`, leaving other bits unchanged.
    pub fn splice(&self, msb: u32, lsb: u32, src: BitVec) -> Self {
        assert!(msb >= lsb, "splice [{msb}:{lsb}] reversed");
        let w = (msb - lsb + 1).min(64);
        let field_mask = Self::mask_for(w) << lsb;
        let new_bits = (src.value & Self::mask_for(w)) << lsb;
        Self {
            width: self.width,
            value: ((self.value & !field_mask) | new_bits) & Self::mask_for(self.width),
            signed: self.signed,
        }
    }

    /// Concatenation `{self, rhs}` (self in the high bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64.
    pub fn concat(&self, rhs: BitVec) -> Self {
        let width = self.width + rhs.width;
        assert!(width <= 64, "concat width {width} exceeds 64");
        Self::new(width, (self.value << rhs.width) | rhs.value)
    }

    // -- Arithmetic (result width = max of operand widths, Verilog's
    //    context rule approximated self-determined) ---------------------

    fn arith_width(&self, rhs: &BitVec) -> u32 {
        self.width.max(rhs.width)
    }

    fn both_signed(&self, rhs: &BitVec) -> bool {
        self.signed && rhs.signed
    }

    /// Wrapping addition.
    pub fn add(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::new(w, self.resize(w).value.wrapping_add(rhs.resize(w).value))
            .with_signed(self.both_signed(&rhs))
    }

    /// Wrapping subtraction.
    pub fn sub(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::new(w, self.resize(w).value.wrapping_sub(rhs.resize(w).value))
            .with_signed(self.both_signed(&rhs))
    }

    /// Wrapping multiplication.
    pub fn mul(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::new(w, self.resize(w).value.wrapping_mul(rhs.resize(w).value))
            .with_signed(self.both_signed(&rhs))
    }

    /// Division; division by zero yields 0 (two-state stand-in for `x`).
    pub fn div(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        let signed = self.both_signed(&rhs);
        if rhs.value == 0 {
            return Self::zero(w).with_signed(signed);
        }
        let v = if signed {
            (self.resize(w).as_i64().wrapping_div(rhs.resize(w).as_i64())) as u64
        } else {
            self.resize(w).value / rhs.resize(w).value
        };
        Self::new(w, v).with_signed(signed)
    }

    /// Remainder; modulo zero yields 0.
    pub fn rem(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        let signed = self.both_signed(&rhs);
        if rhs.value == 0 {
            return Self::zero(w).with_signed(signed);
        }
        let v = if signed {
            (self.resize(w).as_i64().wrapping_rem(rhs.resize(w).as_i64())) as u64
        } else {
            self.resize(w).value % rhs.resize(w).value
        };
        Self::new(w, v).with_signed(signed)
    }

    /// Power with wrapping semantics.
    pub fn pow(&self, rhs: BitVec) -> Self {
        let w = self.width;
        let mut acc = Self::new(w, 1);
        for _ in 0..rhs.value.min(256) {
            acc = acc.mul(*self);
        }
        // Exponents beyond 256 on a <=64-bit base are saturated by the
        // wrap-around anyway (base^256 already cycles).
        acc.with_signed(self.signed)
    }

    // -- Shifts ---------------------------------------------------------

    /// Logical shift left (width preserved).
    pub fn shl(&self, amount: BitVec) -> Self {
        let sh = amount.value;
        let v = if sh >= 64 { 0 } else { self.value << sh };
        Self::new(self.width, v).with_signed(self.signed)
    }

    /// Logical shift right.
    pub fn shr(&self, amount: BitVec) -> Self {
        let sh = amount.value;
        let v = if sh >= 64 { 0 } else { self.value >> sh };
        Self::new(self.width, v).with_signed(self.signed)
    }

    /// Arithmetic shift right: sign-fills only when the value is signed.
    pub fn ashr(&self, amount: BitVec) -> Self {
        if !self.signed || !self.msb() {
            return self.shr(amount).with_signed(self.signed);
        }
        let sh = amount.value.min(64) as u32;
        if sh >= self.width {
            return Self::new(self.width, Self::mask_for(self.width)).with_signed(true);
        }
        let fill = (Self::mask_for(sh)) << (self.width - sh);
        Self::new(self.width, (self.value >> sh) | fill).with_signed(true)
    }

    // -- Comparisons (1-bit results) -------------------------------------

    /// Equality.
    pub fn eq(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::from_bool(self.resize(w).value == rhs.resize(w).value)
    }

    /// Less-than, signed if both operands are signed.
    pub fn lt(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        let r = if self.both_signed(&rhs) {
            self.resize(w).as_i64() < rhs.resize(w).as_i64()
        } else {
            self.resize(w).value < rhs.resize(w).value
        };
        Self::from_bool(r)
    }

    // -- Bitwise ----------------------------------------------------------

    /// Bitwise AND.
    pub fn and(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::new(w, self.resize(w).value & rhs.resize(w).value)
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::new(w, self.resize(w).value | rhs.resize(w).value)
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: BitVec) -> Self {
        let w = self.arith_width(&rhs);
        Self::new(w, self.resize(w).value ^ rhs.resize(w).value)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        Self::new(self.width, !self.value)
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Self {
        Self::new(self.width, self.value.wrapping_neg()).with_signed(self.signed)
    }

    // -- Reductions (1-bit results) ---------------------------------------

    /// AND of all bits.
    pub fn reduce_and(&self) -> Self {
        Self::from_bool(self.value == Self::mask_for(self.width))
    }

    /// OR of all bits.
    pub fn reduce_or(&self) -> Self {
        Self::from_bool(self.value != 0)
    }

    /// XOR of all bits (parity).
    pub fn reduce_xor(&self) -> Self {
        Self::from_bool(self.value.count_ones() % 2 == 1)
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_on_construction() {
        assert_eq!(BitVec::new(4, 0xFF).value(), 0xF);
        assert_eq!(BitVec::new(64, u64::MAX).value(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn zero_width_panics() {
        let _ = BitVec::new(0, 0);
    }

    #[test]
    fn wrapping_arithmetic() {
        let a = BitVec::new(4, 0xF);
        let b = BitVec::new(4, 1);
        assert_eq!(a.add(b).value(), 0);
        assert_eq!(b.sub(a).value(), 2); // 1 - 15 = -14 ≡ 2 (mod 16)
        assert_eq!(a.mul(a).value(), 1); // 225 & 0xF
    }

    #[test]
    fn mixed_width_takes_max() {
        let a = BitVec::new(8, 200);
        let b = BitVec::new(4, 10);
        let s = a.add(b);
        assert_eq!(s.width(), 8);
        assert_eq!(s.value(), 210);
    }

    #[test]
    fn signed_extension_on_resize() {
        let a = BitVec::new_signed(4, 0b1000); // -8
        assert_eq!(a.as_i64(), -8);
        let wide = a.resize(8);
        assert_eq!(wide.value(), 0xF8);
        assert_eq!(wide.as_i64(), -8);
        // Unsigned resize zero-extends.
        let u = BitVec::new(4, 0b1000).resize(8);
        assert_eq!(u.value(), 0x08);
    }

    #[test]
    fn division_semantics() {
        let a = BitVec::new(8, 100);
        assert_eq!(a.div(BitVec::new(8, 7)).value(), 14);
        assert_eq!(a.rem(BitVec::new(8, 7)).value(), 2);
        assert_eq!(a.div(BitVec::zero(8)).value(), 0, "div by zero is 0");
        let neg = BitVec::new_signed(8, 0xF8); // -8
        assert_eq!(neg.div(BitVec::new_signed(8, 2)).as_i64(), -4);
    }

    #[test]
    fn shifts() {
        let a = BitVec::new(8, 0b1001_0000);
        assert_eq!(a.shl(BitVec::new(4, 1)).value(), 0b0010_0000);
        assert_eq!(a.shr(BitVec::new(4, 4)).value(), 0b0000_1001);
        // Arithmetic shift on signed negative fills with ones.
        let s = BitVec::new_signed(8, 0b1001_0000);
        assert_eq!(s.ashr(BitVec::new(4, 2)).value(), 0b1110_0100);
        // On unsigned it behaves as logical.
        assert_eq!(a.ashr(BitVec::new(4, 2)).value(), 0b0010_0100);
        // Oversized shift clears.
        assert_eq!(a.shl(BitVec::new(8, 70)).value(), 0);
    }

    #[test]
    fn comparisons_signed_and_unsigned() {
        let a = BitVec::new(4, 0xF);
        let b = BitVec::new(4, 1);
        assert!(b.lt(a).is_true());
        let sa = BitVec::new_signed(4, 0xF); // -1
        let sb = BitVec::new_signed(4, 1);
        assert!(sa.lt(sb).is_true(), "-1 < 1 signed");
        assert!(a.eq(BitVec::new(8, 0xF)).is_true());
    }

    #[test]
    fn reductions() {
        assert!(BitVec::new(4, 0xF).reduce_and().is_true());
        assert!(!BitVec::new(4, 0x7).reduce_and().is_true());
        assert!(BitVec::new(4, 0x8).reduce_or().is_true());
        assert!(!BitVec::zero(4).reduce_or().is_true());
        assert!(BitVec::new(4, 0b0111).reduce_xor().is_true());
        assert!(!BitVec::new(4, 0b0110).reduce_xor().is_true());
    }

    #[test]
    fn concat_and_slice() {
        let hi = BitVec::new(4, 0xA);
        let lo = BitVec::new(4, 0x5);
        let c = hi.concat(lo);
        assert_eq!(c.width(), 8);
        assert_eq!(c.value(), 0xA5);
        assert_eq!(c.slice(7, 4).value(), 0xA);
        assert_eq!(c.slice(3, 0).value(), 0x5);
        assert_eq!(c.bit(0).value(), 1);
        assert_eq!(c.bit(100).value(), 0, "out of range reads 0");
    }

    #[test]
    fn splice_writes_field() {
        let v = BitVec::new(8, 0xFF);
        let w = v.splice(5, 2, BitVec::new(4, 0b0000));
        assert_eq!(w.value(), 0b1100_0011);
        assert_eq!(w.width(), 8);
    }

    #[test]
    fn negation_wraps() {
        assert_eq!(BitVec::new(4, 3).neg().value(), 13);
        assert_eq!(BitVec::zero(4).neg().value(), 0);
    }

    #[test]
    fn pow_wraps() {
        let b = BitVec::new(8, 3);
        assert_eq!(b.pow(BitVec::new(8, 4)).value(), 81);
        assert_eq!(BitVec::new(4, 2).pow(BitVec::new(4, 10)).value(), 0); // 1024 & 0xF
    }

    #[test]
    fn display_format() {
        assert_eq!(BitVec::new(8, 0xAB).to_string(), "8'hab");
    }
}
