//! Testbench harness: drives a DUT against a golden reference model
//! (the iverilog-testbench substitute, paper §IV-B2).
//!
//! Two protocols are provided:
//!
//! * [`run_combinational`] — per stimulus vector: apply inputs, settle,
//!   compare every listed output with the golden closure's expectation.
//! * [`run_sequential`] — reset phase (golden models start in their
//!   reset state), then per cycle: apply inputs, settle, pulse the
//!   clock, settle, compare outputs. Golden closures therefore model
//!   post-edge behaviour.

use crate::elab::{Design, SimResult};
use crate::interp::Sim;
use serde::{Deserialize, Serialize};

/// One stimulus vector: `(input name, value)` pairs.
pub type InputVector = Vec<(String, u64)>;

/// Expected outputs for one vector: `(output name, value)` pairs.
pub type OutputVector = Vec<(String, u64)>;

/// A recorded expectation failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Vector / cycle index at which the mismatch occurred.
    pub cycle: usize,
    /// Output signal name.
    pub signal: String,
    /// Golden-model expectation.
    pub expected: u64,
    /// DUT value.
    pub got: u64,
}

/// Outcome of a testbench run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbResult {
    /// Whether every comparison matched.
    pub passed: bool,
    /// Vectors / cycles executed before stopping.
    pub cycles_run: usize,
    /// First few mismatches (the run stops at the first failing cycle).
    pub mismatches: Vec<Mismatch>,
}

/// Reset wiring for sequential testbenches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResetSpec {
    /// Reset signal name.
    pub signal: String,
    /// Whether the reset is active-low (`rst_n`).
    pub active_low: bool,
    /// Clock cycles to hold reset asserted before the test.
    pub cycles: usize,
}

/// Clocking/reset description for [`run_sequential`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqSpec {
    /// Clock signal name.
    pub clock: String,
    /// Optional reset wiring.
    pub reset: Option<ResetSpec>,
}

/// Runs a combinational test: for each vector, inputs are applied, the
/// design settles, and each golden `(name, value)` expectation is
/// compared.
///
/// # Errors
///
/// Propagates simulator faults (oscillation, runtime errors); the caller
/// treats those as functional failures too.
pub fn run_combinational(
    design: &Design,
    vectors: &[InputVector],
    mut golden: impl FnMut(&InputVector) -> OutputVector,
) -> SimResult<TbResult> {
    let mut sim = Sim::new(design)?;
    let mut result = TbResult {
        passed: true,
        cycles_run: 0,
        mismatches: Vec::new(),
    };
    for (cycle, vec) in vectors.iter().enumerate() {
        for (name, value) in vec {
            sim.set(name, *value)?;
        }
        result.cycles_run = cycle + 1;
        if !compare(&mut sim, cycle, &golden(vec), &mut result)? {
            break;
        }
    }
    Ok(result)
}

/// Runs a sequential test; see the module docs for the cycle protocol.
///
/// The golden closure is called once per post-reset cycle with that
/// cycle's inputs and must return the expected outputs *after* the clock
/// edge.
///
/// # Errors
///
/// Propagates simulator faults.
pub fn run_sequential(
    design: &Design,
    spec: &SeqSpec,
    vectors: &[InputVector],
    mut golden: impl FnMut(&InputVector) -> OutputVector,
) -> SimResult<TbResult> {
    let mut sim = Sim::new(design)?;
    sim.set(&spec.clock, 0)?;

    // Reset phase: assert reset, clock a few cycles, deassert.
    if let Some(rst) = &spec.reset {
        let (assert_v, deassert_v) = if rst.active_low { (0, 1) } else { (1, 0) };
        sim.set(&rst.signal, assert_v)?;
        for _ in 0..rst.cycles.max(1) {
            sim.clock_pulse(&spec.clock)?;
        }
        sim.set(&rst.signal, deassert_v)?;
    }

    let mut result = TbResult {
        passed: true,
        cycles_run: 0,
        mismatches: Vec::new(),
    };
    for (cycle, vec) in vectors.iter().enumerate() {
        for (name, value) in vec {
            sim.set(name, *value)?;
        }
        sim.clock_pulse(&spec.clock)?;
        result.cycles_run = cycle + 1;
        if !compare(&mut sim, cycle, &golden(vec), &mut result)? {
            break;
        }
    }
    Ok(result)
}

/// Compares expectations; records mismatches and returns whether to
/// continue.
fn compare(
    sim: &mut Sim<'_>,
    cycle: usize,
    expected: &OutputVector,
    result: &mut TbResult,
) -> SimResult<bool> {
    for (name, exp) in expected {
        let got = sim.get(name)?;
        if got != *exp {
            result.passed = false;
            result.mismatches.push(Mismatch {
                cycle,
                signal: name.clone(),
                expected: *exp,
                got,
            });
        }
    }
    Ok(result.passed)
}
