//! Elaboration: resolving a parsed [`Module`] into an executable
//! [`Design`] — parameters folded, ANSI and non-ANSI port declarations
//! merged, signals interned, and processes collected.
//!
//! Elaboration performs the semantic checks iverilog would report at
//! compile time: undeclared identifiers, procedural assignment to wires,
//! continuous assignment to regs, bad memory usage. The evaluation
//! harness counts an elaboration failure as a *syntax* failure, matching
//! the paper's "design and testbench compile together" criterion.

use crate::value::BitVec;
use std::collections::HashMap;
use std::fmt;
use verispec_verilog::ast::{
    Direction, Edge, Expr, Item, LValue, Module, NetKind, Range, Sensitivity, Stmt,
};

/// Errors raised during elaboration or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Human-readable description.
    pub message: String,
}

impl SimError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SimError {}

/// Convenience alias.
pub type SimResult<T> = Result<T, SimError>;

/// Interned signal index.
pub type SignalId = usize;

/// What kind of storage a signal denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Continuous-assignment driven net.
    Wire,
    /// Procedurally assigned register.
    Reg,
    /// 32-bit signed integer variable.
    Integer,
    /// A memory (`reg [w] m [lo:hi]`): `depth` elements addressed from
    /// `lo`.
    Memory {
        /// Number of elements.
        depth: u32,
        /// Lowest address.
        lo: u64,
    },
}

/// An elaborated signal.
#[derive(Debug, Clone)]
pub struct Signal {
    /// Source name.
    pub name: String,
    /// Element width in bits.
    pub width: u32,
    /// Declared `signed`.
    pub signed: bool,
    /// Storage kind.
    pub kind: SignalKind,
    /// Port direction, if the signal is a port.
    pub dir: Option<Direction>,
    /// Declaration-time initializer (`reg r = 1'b0;`).
    pub init: Option<BitVec>,
}

/// An executable process.
#[derive(Debug, Clone)]
pub enum Process {
    /// `assign lhs = rhs;`
    Assign {
        /// Target.
        lhs: LValue,
        /// Driven expression.
        rhs: Expr,
    },
    /// `always @(*) body` or `always @(a or b) body` without edges.
    Comb {
        /// Process body.
        body: Stmt,
    },
    /// `always @(posedge clk or negedge rst_n) body`.
    Clocked {
        /// Edge-qualified event sources.
        events: Vec<(SignalId, Edge)>,
        /// Process body.
        body: Stmt,
    },
    /// `initial body` — run once at time zero.
    Initial {
        /// Process body.
        body: Stmt,
    },
}

/// A fully elaborated, executable module.
#[derive(Debug, Clone)]
pub struct Design {
    /// Module name.
    pub name: String,
    signals: Vec<Signal>,
    by_name: HashMap<String, SignalId>,
    /// Resolved parameter/localparam values.
    pub params: HashMap<String, BitVec>,
    /// Executable processes in declaration order.
    pub processes: Vec<Process>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
}

impl Design {
    /// All signals.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Looks up a signal id by name.
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// The signal record for an id.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id]
    }

    /// Input port ids in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Output port ids in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }
}

/// Elaborates `module` with default parameter values.
///
/// # Errors
///
/// Returns a [`SimError`] for unsupported constructs, undeclared names,
/// illegal drivers, and non-constant widths.
pub fn elaborate(module: &Module) -> SimResult<Design> {
    elaborate_with_params(module, &[])
}

/// Elaborates with parameter overrides (`.W(8)`-style).
///
/// # Errors
///
/// See [`elaborate`]; unknown override names are also rejected.
pub fn elaborate_with_params(module: &Module, overrides: &[(String, u64)]) -> SimResult<Design> {
    Elaborator::new(module, overrides)?.run()
}

struct Elaborator<'m> {
    module: &'m Module,
    params: HashMap<String, BitVec>,
}

/// Port info accumulated from header and body declarations.
#[derive(Default, Clone)]
struct PortInfo {
    dir: Option<Direction>,
    net: Option<NetKind>,
    signed: bool,
    range: Option<Range>,
}

impl<'m> Elaborator<'m> {
    fn new(module: &'m Module, overrides: &[(String, u64)]) -> SimResult<Self> {
        let mut this = Self {
            module,
            params: HashMap::new(),
        };
        let over: HashMap<&str, u64> = overrides.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        for (name, _) in overrides {
            if !module.params.iter().any(|p| &p.name == name) {
                return Err(SimError::new(format!(
                    "parameter override `{name}` does not exist on module `{}`",
                    module.name
                )));
            }
        }
        // Header parameters (may reference earlier ones).
        for p in &module.params {
            let v = match over.get(p.name.as_str()) {
                Some(&v) => BitVec::new(32, v),
                None => this.const_eval(&p.value)?,
            };
            this.params.insert(p.name.clone(), v);
        }
        // Body parameters and localparams.
        for item in &module.items {
            if let Item::Param(decls) | Item::Localparam(decls) = item {
                for d in decls {
                    let v = match over.get(d.name.as_str()) {
                        Some(&v) => BitVec::new(32, v),
                        None => this.const_eval(&d.value)?,
                    };
                    this.params.insert(d.name.clone(), v);
                }
            }
        }
        Ok(this)
    }

    /// Evaluates a parameter-only constant expression.
    fn const_eval(&self, e: &Expr) -> SimResult<BitVec> {
        match e {
            Expr::Number(l) => {
                if l.has_xz() {
                    // Two-state: x/z constant bits read as 0.
                }
                Ok(BitVec::new(l.effective_width(), l.value).with_signed(l.signed))
            }
            Expr::Ident(n) => self
                .params
                .get(n)
                .copied()
                .ok_or_else(|| SimError::new(format!("`{n}` is not a constant"))),
            Expr::Unary(op, a) => {
                use verispec_verilog::ast::UnaryOp::*;
                let v = self.const_eval(a)?;
                Ok(match op {
                    Plus => v,
                    Minus => v.neg(),
                    Not => BitVec::from_bool(!v.is_true()),
                    BitNot => v.not(),
                    RedAnd => v.reduce_and(),
                    RedOr => v.reduce_or(),
                    RedXor => v.reduce_xor(),
                    RedNand => v.reduce_and().not(),
                    RedNor => v.reduce_or().not(),
                    RedXnor => v.reduce_xor().not(),
                })
            }
            Expr::Binary(op, a, b) => {
                use verispec_verilog::ast::BinaryOp::*;
                let x = self.const_eval(a)?;
                let y = self.const_eval(b)?;
                Ok(match op {
                    Add => x.add(y),
                    Sub => x.sub(y),
                    Mul => x.mul(y),
                    Div => x.div(y),
                    Mod => x.rem(y),
                    Pow => x.pow(y),
                    Shl | AShl => x.shl(y),
                    Shr => x.shr(y),
                    AShr => x.ashr(y),
                    Lt => x.lt(y),
                    Le => BitVec::from_bool(!y.lt(x).is_true()),
                    Gt => y.lt(x),
                    Ge => BitVec::from_bool(!x.lt(y).is_true()),
                    Eq | CaseEq => x.eq(y),
                    Ne | CaseNe => BitVec::from_bool(!x.eq(y).is_true()),
                    BitAnd => x.and(y),
                    BitOr => x.or(y),
                    BitXor => x.xor(y),
                    BitXnor => x.xor(y).not(),
                    LogAnd => BitVec::from_bool(x.is_true() && y.is_true()),
                    LogOr => BitVec::from_bool(x.is_true() || y.is_true()),
                })
            }
            Expr::Ternary(c, t, f) => {
                if self.const_eval(c)?.is_true() {
                    self.const_eval(t)
                } else {
                    self.const_eval(f)
                }
            }
            other => Err(SimError::new(format!(
                "expression is not constant: {other:?}"
            ))),
        }
    }

    fn range_width(&self, range: &Option<Range>) -> SimResult<(u32, u64)> {
        match range {
            None => Ok((1, 0)),
            Some(r) => {
                let msb = self.const_eval(&r.msb)?.value();
                let lsb = self.const_eval(&r.lsb)?.value();
                let (hi, lo) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
                let width = hi - lo + 1;
                if width == 0 || width > 64 {
                    return Err(SimError::new(format!(
                        "unsupported vector width {width} (must be 1..=64)"
                    )));
                }
                Ok((width as u32, lo))
            }
        }
    }

    fn run(self) -> SimResult<Design> {
        let module = self.module;
        // ---- Pass 1: merge port information ---------------------------
        let mut port_info: HashMap<&str, PortInfo> = HashMap::new();
        let mut port_order: Vec<&str> = Vec::new();
        for p in &module.ports {
            port_order.push(&p.name);
            if port_info.contains_key(p.name.as_str()) {
                return Err(SimError::new(format!("duplicate port `{}`", p.name)));
            }
            port_info.insert(
                &p.name,
                PortInfo {
                    dir: p.dir,
                    net: p.net,
                    signed: p.signed,
                    range: p.range.clone(),
                },
            );
        }
        for item in &module.items {
            if let Item::PortDecl(pd) = item {
                for name in &pd.names {
                    let info = port_info.get_mut(name.as_str()).ok_or_else(|| {
                        SimError::new(format!(
                            "`{name}` declared as port but absent from the port list"
                        ))
                    })?;
                    info.dir = Some(pd.dir);
                    if pd.net.is_some() {
                        info.net = pd.net;
                    }
                    info.signed |= pd.signed;
                    if pd.range.is_some() {
                        info.range = pd.range.clone();
                    }
                }
            }
        }

        // ---- Pass 2: build the signal table ---------------------------
        let mut signals: Vec<Signal> = Vec::new();
        let mut by_name: HashMap<String, SignalId> = HashMap::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();

        let add_signal = |signals: &mut Vec<Signal>,
                          by_name: &mut HashMap<String, SignalId>,
                          s: Signal|
         -> SimResult<SignalId> {
            if by_name.contains_key(&s.name) {
                return Err(SimError::new(format!(
                    "duplicate declaration of `{}`",
                    s.name
                )));
            }
            let id = signals.len();
            by_name.insert(s.name.clone(), id);
            signals.push(s);
            Ok(id)
        };

        for name in &port_order {
            let info = &port_info[name];
            let dir = info.dir.ok_or_else(|| {
                SimError::new(format!("port `{name}` has no direction declaration"))
            })?;
            let (width, _) = self.range_width(&info.range)?;
            let kind = match info.net {
                Some(NetKind::Reg) => SignalKind::Reg,
                _ => SignalKind::Wire,
            };
            if dir == Direction::Input && kind == SignalKind::Reg {
                return Err(SimError::new(format!(
                    "input port `{name}` cannot be a reg"
                )));
            }
            let id = add_signal(
                &mut signals,
                &mut by_name,
                Signal {
                    name: (*name).to_string(),
                    width,
                    signed: info.signed,
                    kind,
                    dir: Some(dir),
                    init: None,
                },
            )?;
            match dir {
                Direction::Input => inputs.push(id),
                Direction::Output => outputs.push(id),
                Direction::Inout => {
                    return Err(SimError::new(format!(
                        "inout port `{name}` is not supported by the simulator"
                    )))
                }
            }
        }

        let mut processes: Vec<Process> = Vec::new();
        // Clocked sensitivity lists reference signals that may be declared
        // after the `always` item; collect names now, patch ids at the end.
        let mut clocked_events: Vec<Vec<(String, Edge)>> = Vec::new();
        let mut clocked_slots: Vec<usize> = Vec::new();

        for item in &module.items {
            match item {
                Item::Net(nd) => {
                    let (width, _) = self.range_width(&nd.range)?;
                    for (name, init) in &nd.nets {
                        add_signal(
                            &mut signals,
                            &mut by_name,
                            Signal {
                                name: name.clone(),
                                width,
                                signed: nd.signed,
                                kind: SignalKind::Wire,
                                dir: None,
                                init: None,
                            },
                        )?;
                        if let Some(e) = init {
                            processes.push(Process::Assign {
                                lhs: LValue::Ident(name.clone()),
                                rhs: e.clone(),
                            });
                        }
                    }
                }
                Item::Reg(rd) => {
                    let (width, _) = self.range_width(&rd.range)?;
                    for rv in &rd.regs {
                        let kind = match &rv.mem {
                            None => {
                                // `output reg q` already created the port
                                // signal; upgrade its kind instead.
                                if let Some(&id) = by_name.get(&rv.name) {
                                    let sig = &mut signals[id];
                                    if sig.dir == Some(Direction::Output) {
                                        sig.kind = SignalKind::Reg;
                                        if rd.range.is_some() {
                                            sig.width = width;
                                        }
                                        sig.signed |= rd.signed;
                                        continue;
                                    }
                                    return Err(SimError::new(format!(
                                        "duplicate declaration of `{}`",
                                        rv.name
                                    )));
                                }
                                SignalKind::Reg
                            }
                            Some(mem_range) => {
                                let hi = self.const_eval(&mem_range.msb)?.value();
                                let lo = self.const_eval(&mem_range.lsb)?.value();
                                let (hi, lo) = if hi >= lo { (hi, lo) } else { (lo, hi) };
                                let depth = hi - lo + 1;
                                if depth == 0 || depth > 1 << 20 {
                                    return Err(SimError::new(format!(
                                        "memory `{}` depth {depth} unsupported",
                                        rv.name
                                    )));
                                }
                                SignalKind::Memory {
                                    depth: depth as u32,
                                    lo,
                                }
                            }
                        };
                        let init = match &rv.init {
                            None => None,
                            Some(e) => Some(self.const_eval(e)?.resize(width)),
                        };
                        add_signal(
                            &mut signals,
                            &mut by_name,
                            Signal {
                                name: rv.name.clone(),
                                width,
                                signed: rd.signed,
                                kind,
                                dir: None,
                                init,
                            },
                        )?;
                    }
                }
                Item::Integer(names) => {
                    for name in names {
                        add_signal(
                            &mut signals,
                            &mut by_name,
                            Signal {
                                name: name.clone(),
                                width: 32,
                                signed: true,
                                kind: SignalKind::Integer,
                                dir: None,
                                init: None,
                            },
                        )?;
                    }
                }
                Item::Genvar(_) => {
                    return Err(SimError::new(
                        "genvar/generate is not supported by the simulator",
                    ))
                }
                Item::Param(_) | Item::Localparam(_) | Item::PortDecl(_) => {}
                Item::Assign(assigns) => {
                    for (lhs, rhs) in assigns {
                        processes.push(Process::Assign {
                            lhs: lhs.clone(),
                            rhs: rhs.clone(),
                        });
                    }
                }
                Item::Always(ab) => match &ab.sensitivity {
                    Sensitivity::Star => {
                        processes.push(Process::Comb {
                            body: ab.body.clone(),
                        });
                    }
                    Sensitivity::List(evs) => {
                        let edged = evs.iter().any(|e| e.edge.is_some());
                        if edged {
                            if evs.iter().any(|e| e.edge.is_none()) {
                                return Err(SimError::new(
                                    "mixed edge and level sensitivity is not supported",
                                ));
                            }
                            // Defer id resolution until after the table is
                            // complete (clock may be declared later).
                            processes.push(Process::Clocked {
                                events: Vec::new(), // patched below
                                body: ab.body.clone(),
                            });
                            // Remember the names for patching.
                            clocked_events.push(
                                evs.iter()
                                    .map(|e| (e.signal.clone(), e.edge.expect("edged")))
                                    .collect::<Vec<_>>(),
                            );
                            clocked_slots.push(processes.len() - 1);
                        } else {
                            // Level-sensitive list: treat as combinational.
                            processes.push(Process::Comb {
                                body: ab.body.clone(),
                            });
                        }
                    }
                },
                Item::Initial(body) => {
                    processes.push(Process::Initial { body: body.clone() });
                }
                Item::Instance(inst) => {
                    // Validate connection expressions parse-level only.
                    let _ = &inst.conns;
                    return Err(SimError::new(format!(
                        "module instantiation (`{}`) is not supported by the behavioral simulator",
                        inst.module
                    )));
                }
            }
        }

        // ---- Pass 3: patch clocked event ids ---------------------------
        for (slot, names) in clocked_slots.into_iter().zip(clocked_events) {
            let mut events = Vec::with_capacity(names.len());
            for (name, edge) in names {
                let id = *by_name.get(&name).ok_or_else(|| {
                    SimError::new(format!("sensitivity list references undeclared `{name}`"))
                })?;
                events.push((id, edge));
            }
            if let Process::Clocked { events: ev, .. } = &mut processes[slot] {
                *ev = events;
            }
        }

        let design = Design {
            name: module.name.clone(),
            signals,
            by_name,
            params: self.params.clone(),
            processes,
            inputs,
            outputs,
        };
        self.validate(&design)?;
        Ok(design)
    }

    /// Semantic checks over the finished design: every referenced name
    /// resolves, drivers are legal for the signal kind.
    fn validate(&self, design: &Design) -> SimResult<()> {
        let resolve = |name: &str| -> SimResult<()> {
            if design.by_name.contains_key(name) || self.params.contains_key(name) {
                Ok(())
            } else {
                Err(SimError::new(format!("`{name}` is not declared")))
            }
        };
        let check_expr = |e: &Expr| -> SimResult<()> {
            let mut ids = Vec::new();
            e.collect_idents(&mut ids);
            for id in ids {
                resolve(id)?;
            }
            Ok(())
        };
        fn check_lvalue(
            design: &Design,
            lv: &LValue,
            procedural: bool,
            check_expr: &dyn Fn(&Expr) -> SimResult<()>,
        ) -> SimResult<()> {
            for name in lv.written_names() {
                let Some(&id) = design.by_name.get(name) else {
                    return Err(SimError::new(format!("assignment to undeclared `{name}`")));
                };
                let sig = &design.signals[id];
                if sig.dir == Some(Direction::Input) {
                    return Err(SimError::new(format!(
                        "cannot assign to input port `{name}`"
                    )));
                }
                match (procedural, &sig.kind) {
                    (true, SignalKind::Wire) => {
                        return Err(SimError::new(format!(
                            "procedural assignment to wire `{name}` (declare it reg)"
                        )))
                    }
                    (false, SignalKind::Reg | SignalKind::Integer | SignalKind::Memory { .. }) => {
                        return Err(SimError::new(format!(
                            "continuous assignment to reg `{name}`"
                        )))
                    }
                    _ => {}
                }
            }
            // Index expressions inside the l-value must also resolve.
            match lv {
                LValue::Ident(_) => {}
                LValue::Bit(_, i) => check_expr(i)?,
                LValue::Part(_, r) => {
                    check_expr(&r.msb)?;
                    check_expr(&r.lsb)?;
                }
                LValue::IndexedPart { base, width, .. } => {
                    check_expr(base)?;
                    check_expr(width)?;
                }
                LValue::Concat(parts) => {
                    for p in parts {
                        check_lvalue(design, p, procedural, check_expr)?;
                    }
                }
            }
            Ok(())
        }
        fn check_stmt(
            design: &Design,
            stmt: &Stmt,
            check_expr: &dyn Fn(&Expr) -> SimResult<()>,
        ) -> SimResult<()> {
            match stmt {
                Stmt::Block { stmts, .. } => {
                    for s in stmts {
                        check_stmt(design, s, check_expr)?;
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    check_expr(cond)?;
                    check_stmt(design, then_branch, check_expr)?;
                    if let Some(e) = else_branch {
                        check_stmt(design, e, check_expr)?;
                    }
                }
                Stmt::Case {
                    scrutinee,
                    arms,
                    default,
                    ..
                } => {
                    check_expr(scrutinee)?;
                    for arm in arms {
                        for l in &arm.labels {
                            check_expr(l)?;
                        }
                        check_stmt(design, &arm.body, check_expr)?;
                    }
                    if let Some(d) = default {
                        check_stmt(design, d, check_expr)?;
                    }
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    check_stmt(design, init, check_expr)?;
                    check_expr(cond)?;
                    check_stmt(design, step, check_expr)?;
                    check_stmt(design, body, check_expr)?;
                }
                Stmt::While { cond, body } | Stmt::Repeat { count: cond, body } => {
                    check_expr(cond)?;
                    check_stmt(design, body, check_expr)?;
                }
                Stmt::Blocking { lhs, rhs } | Stmt::NonBlocking { lhs, rhs } => {
                    check_lvalue(design, lhs, true, check_expr)?;
                    check_expr(rhs)?;
                }
                Stmt::Null => {}
            }
            Ok(())
        }

        for p in &design.processes {
            match p {
                Process::Assign { lhs, rhs } => {
                    check_lvalue(design, lhs, false, &check_expr)?;
                    check_expr(rhs)?;
                }
                Process::Comb { body } | Process::Initial { body } => {
                    check_stmt(design, body, &check_expr)?
                }
                Process::Clocked { body, .. } => check_stmt(design, body, &check_expr)?,
            }
        }

        // Driver conflicts iverilog would reject: two whole-signal
        // continuous assignments to the same net. (Disjoint bit-level
        // drivers like `assign y[0] = ...; assign y[1] = ...;` stay
        // legal.)
        let mut full_drivers: HashMap<&str, usize> = HashMap::new();
        for p in &design.processes {
            if let Process::Assign {
                lhs: LValue::Ident(name),
                ..
            } = p
            {
                *full_drivers.entry(name.as_str()).or_insert(0) += 1;
            }
        }
        for (name, count) in full_drivers {
            if count > 1 {
                return Err(SimError::new(format!(
                    "`{name}` has {count} continuous drivers"
                )));
            }
        }
        Ok(())
    }
}
