//! Per-request phase timelines reconstructed from an event log.
//!
//! The raw stream records transitions; this module folds them back
//! into intervals — queued, warmup, decode, parked — that the Chrome
//! exporter renders as spans and the attribution report sums into
//! per-phase costs.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};

/// A lifecycle phase a request can spend ticks in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Waiting in the admission queue.
    Queued,
    /// Admitted but replaying prompt prefill (sub-span of the first
    /// decode interval).
    Warmup,
    /// Active in the batch, stepping.
    Decode,
    /// Preempted: sessions released, waiting to resume.
    Parked,
}

impl Phase {
    /// Stable lowercase name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Warmup => "warmup",
            Phase::Decode => "decode",
            Phase::Parked => "parked",
        }
    }
}

/// One half-open tick interval `[start, end)` spent in a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The phase.
    pub phase: Phase,
    /// First tick of the interval.
    pub start: u64,
    /// One past the last tick of the interval (`end >= start`).
    pub end: u64,
}

impl PhaseSpan {
    /// Ticks covered by the span.
    pub fn ticks(&self) -> u64 {
        self.end - self.start
    }
}

/// The reconstructed lifecycle of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTimeline {
    /// Request id.
    pub request: u64,
    /// Worker that served it.
    pub worker: u32,
    /// Tick the request entered the admission queue.
    pub submitted: u64,
    /// Tick the request completed, if it did.
    pub finished: Option<u64>,
    /// Tick admission control shed it, if it was dropped.
    pub shed: Option<u64>,
    /// Phase intervals in chronological order; open intervals are
    /// closed at the log horizon (max event tick).
    pub phases: Vec<PhaseSpan>,
    /// Committed decode steps.
    pub steps: usize,
    /// Steps pushed to a later tick by the verify budget.
    pub deferrals: usize,
}

impl RequestTimeline {
    /// Total ticks attributed to `phase`.
    pub fn ticks_in(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .filter(|s| s.phase == phase)
            .map(PhaseSpan::ticks)
            .sum()
    }

    /// End of the request's last activity (finish, shed, or the last
    /// phase boundary).
    pub fn end(&self) -> u64 {
        self.finished
            .or(self.shed)
            .or_else(|| self.phases.last().map(|s| s.end))
            .unwrap_or(self.submitted)
    }
}

#[derive(Default)]
struct Builder {
    worker: u32,
    submitted: u64,
    finished: Option<u64>,
    shed: Option<u64>,
    first_admit: Option<u64>,
    warm_until: Option<u64>,
    open_decode: Option<u64>,
    open_park: Option<u64>,
    queued_from: Option<u64>,
    phases: Vec<PhaseSpan>,
    steps: usize,
    deferrals: usize,
}

impl Builder {
    fn push(&mut self, phase: Phase, start: u64, end: u64) {
        if end > start {
            self.phases.push(PhaseSpan { phase, start, end });
        }
    }

    fn finish(mut self, request: u64, horizon: u64) -> RequestTimeline {
        if let Some(q) = self.queued_from.take() {
            let end = self.shed.unwrap_or(horizon);
            self.push(Phase::Queued, q, end);
        }
        if let Some(d) = self.open_decode.take() {
            self.push(Phase::Decode, d, self.finished.unwrap_or(horizon));
        }
        if let Some(p) = self.open_park.take() {
            self.push(Phase::Parked, p, horizon);
        }
        // Carve the warmup sub-span out of the first decode interval.
        if let (Some(admit), Some(warm)) = (self.first_admit, self.warm_until) {
            if let Some(seg) = self
                .phases
                .iter()
                .find(|s| s.phase == Phase::Decode && s.start == admit)
            {
                let end = warm.min(seg.end);
                let start = seg.start;
                self.push(Phase::Warmup, start, end);
            }
        }
        self.phases.sort_by_key(|s| (s.start, s.end, s.phase));
        RequestTimeline {
            request,
            worker: self.worker,
            submitted: self.submitted,
            finished: self.finished,
            shed: self.shed,
            phases: self.phases,
            steps: self.steps,
            deferrals: self.deferrals,
        }
    }
}

/// Folds an event log into per-request timelines, keyed by request id.
pub fn timelines(events: &[TraceEvent]) -> BTreeMap<u64, RequestTimeline> {
    let horizon = events.iter().map(|e| e.tick).max().unwrap_or(0);
    let mut builders: BTreeMap<u64, Builder> = BTreeMap::new();
    for ev in events {
        let Some(id) = ev.request else { continue };
        let b = builders.entry(id).or_default();
        match &ev.kind {
            EventKind::Submitted { .. } => {
                b.worker = ev.worker;
                b.submitted = ev.tick;
                b.queued_from = Some(ev.tick);
            }
            EventKind::Admitted { warm_until, .. } => {
                b.worker = ev.worker;
                if let Some(q) = b.queued_from.take() {
                    b.push(Phase::Queued, q, ev.tick);
                }
                if b.first_admit.is_none() {
                    b.first_admit = Some(ev.tick);
                    b.warm_until = Some(*warm_until);
                }
                b.open_decode = Some(ev.tick);
            }
            EventKind::Resumed => {
                if let Some(p) = b.open_park.take() {
                    b.push(Phase::Parked, p, ev.tick);
                }
                b.open_decode = Some(ev.tick);
            }
            EventKind::Preempted => {
                if let Some(d) = b.open_decode.take() {
                    b.push(Phase::Decode, d, ev.tick);
                }
                b.open_park = Some(ev.tick);
            }
            EventKind::Step { .. } => b.steps += 1,
            EventKind::Deferred => b.deferrals += 1,
            EventKind::Shed { .. } => b.shed = Some(ev.tick),
            EventKind::Finished { .. } => {
                b.finished = Some(ev.tick);
                if let Some(d) = b.open_decode.take() {
                    b.push(Phase::Decode, d, ev.tick);
                }
            }
            _ => {}
        }
    }
    builders
        .into_iter()
        .map(|(id, b)| (id, b.finish(id, horizon)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_round_trip_yields_four_phases() {
        let ev = |tick, kind| TraceEvent::new(tick, 0, Some(9), kind);
        let events = vec![
            ev(
                0,
                EventKind::Submitted {
                    arrival: 0,
                    prompt_tokens: 2,
                    deadline: None,
                },
            ),
            ev(
                2,
                EventKind::Admitted {
                    queued_ticks: 2,
                    warm_until: 3,
                },
            ),
            ev(5, EventKind::Preempted),
            ev(8, EventKind::Resumed),
            ev(
                11,
                EventKind::Finished {
                    tokens: 4,
                    steps: 4,
                    proposed: 0,
                    accepted: 0,
                },
            ),
        ];
        let map = timelines(&events);
        let tl = &map[&9];
        assert_eq!(tl.ticks_in(Phase::Queued), 2);
        assert_eq!(tl.ticks_in(Phase::Warmup), 1);
        assert_eq!(tl.ticks_in(Phase::Decode), 3 + 3);
        assert_eq!(tl.ticks_in(Phase::Parked), 3);
        assert_eq!(tl.end(), 11);
        // Warmup nests inside the first decode interval.
        let warm = tl
            .phases
            .iter()
            .find(|s| s.phase == Phase::Warmup)
            .expect("warmup span");
        let decode = tl
            .phases
            .iter()
            .find(|s| s.phase == Phase::Decode)
            .expect("decode span");
        assert!(decode.start <= warm.start && warm.end <= decode.end);
    }
}
