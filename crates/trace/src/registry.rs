//! The metrics registry: counters, gauges, and histograms **derived
//! from the event stream**.
//!
//! Aggregates are a pure fold over [`TraceEvent`]s — there is no
//! second set of hand-maintained increments that could drift from the
//! events, so a registry built from a log can never disagree with the
//! log it was built from. Serving-side aggregate stats reuse the same
//! fold (`ServeStats::apply_event` in `verispec-serve`), pinning both
//! views to one source of truth.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::event::{EventKind, TraceEvent};

/// Number of log2 buckets a [`Histogram`] keeps (values up to
/// `2^15..` land in the last bucket).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A monotonically-updated value with its observed peak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Gauge {
    /// Current value.
    pub value: i64,
    /// Highest value ever observed.
    pub peak: i64,
}

impl Gauge {
    fn add(&mut self, delta: i64) {
        self.value += delta;
        self.peak = self.peak.max(self.value);
    }
}

/// A log2-bucketed histogram of non-negative integer observations.
///
/// Bucket `i` counts observations `v` with `floor(log2(max(v,1))) == i`
/// (bucket 0 holds both 0 and 1); the last bucket absorbs the tail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Histogram {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts, log2-indexed.
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Index of the bucket a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        (value.max(1).ilog2() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Counters, gauges, and histograms folded from an event stream.
///
/// Keys are stable dotted names (`prefix.hits`, `steps.committed`,
/// `queue.ticks`, …) held in `BTreeMap`s so every iteration — and the
/// serialized form — is deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a whole event log into a fresh registry.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut reg = Self::new();
        for ev in events {
            reg.observe(ev);
        }
        reg
    }

    fn count(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    fn gauge_add(&mut self, name: &str, delta: i64) {
        self.gauges.entry(name.to_string()).or_default().add(delta);
    }

    fn record_hist(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Folds one event into the aggregates.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match &ev.kind {
            EventKind::Submitted { .. } => {
                self.count("requests.submitted", 1);
                self.gauge_add("requests.queued", 1);
            }
            EventKind::CacheLookup {
                hit,
                depth,
                tokens_saved,
            } => {
                if *hit {
                    self.count("prefix.hits", 1);
                    self.count("prefix.tokens_saved", *tokens_saved as u64);
                    self.record_hist("prefix.hit_depth", *depth as u64);
                } else {
                    self.count("prefix.misses", 1);
                }
            }
            EventKind::Admitted { queued_ticks, .. } => {
                self.count("requests.admitted", 1);
                self.gauge_add("requests.queued", -1);
                self.gauge_add("requests.active", 1);
                self.record_hist("queue.ticks", *queued_ticks);
            }
            EventKind::Resumed => {
                self.count("requests.resumed", 1);
                self.gauge_add("requests.active", 1);
            }
            EventKind::Preempted => {
                self.count("requests.preempted", 1);
                self.gauge_add("requests.active", -1);
            }
            EventKind::Deferred => self.count("steps.deferred", 1),
            EventKind::Step {
                proposed,
                accepted,
                committed,
                ..
            } => {
                self.count("steps.committed", 1);
                self.count("tokens.committed", *committed as u64);
                self.record_hist("step.proposed", *proposed as u64);
                self.record_hist("step.accepted", *accepted as u64);
            }
            EventKind::GrammarPrune {
                considered,
                pruned,
                surviving,
            } => {
                self.count("grammar.considered", *considered as u64);
                self.count("grammar.pruned", *pruned as u64);
                self.count("grammar.surviving", *surviving as u64);
            }
            EventKind::ForkEvicted => self.count("evictions.forks", 1),
            EventKind::PrefixEvicted => self.count("evictions.prefix", 1),
            EventKind::Shed { .. } => {
                self.count("requests.shed", 1);
                self.gauge_add("requests.queued", -1);
            }
            EventKind::Finished {
                tokens,
                steps,
                proposed,
                accepted,
            } => {
                self.count("requests.finished", 1);
                self.count("finished.tokens", *tokens as u64);
                self.count("finished.proposed", *proposed as u64);
                self.count("finished.accepted", *accepted as u64);
                self.gauge_add("requests.active", -1);
                self.record_hist("request.steps", *steps as u64);
            }
            EventKind::Deadline { met, .. } => {
                self.count(
                    if *met {
                        "deadline.met"
                    } else {
                        "deadline.missed"
                    },
                    1,
                );
            }
            EventKind::IdleSkip { skipped } => self.count("ticks.idle_skipped", *skipped),
            EventKind::Batch { requests } => {
                self.record_hist("batch.size", requests.len() as u64);
            }
            EventKind::TickBudget {
                capacity, spent, ..
            } => {
                self.count("budget.capacity", *capacity as u64);
                self.count("budget.spent", *spent as u64);
            }
            EventKind::Routed { policy, .. } => {
                self.count(&format!("route.{policy}"), 1);
            }
            EventKind::WorkerCrashed { in_flight } => {
                self.count("fault.crashes", 1);
                self.count("fault.stranded", *in_flight as u64);
            }
            EventKind::WorkerRestarted => self.count("fault.restarts", 1),
            EventKind::Migrated { replay_tokens, .. } => {
                self.count("fault.migrations", 1);
                self.count("fault.replayed_tokens", *replay_tokens as u64);
                self.record_hist("fault.replay_tokens", *replay_tokens as u64);
            }
            EventKind::Backpressure => self.count("fault.backpressure", 1),
        }
    }

    /// Value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> &BTreeMap<String, Gauge> {
        &self.gauges
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Renders a plain-text summary (used by the `trace_view` CLI).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("  {name:<24} {v}\n"));
        }
        out.push_str("gauges (final/peak):\n");
        for (name, g) in &self.gauges {
            out.push_str(&format!("  {name:<24} {}/{}\n", g.value, g.peak));
        }
        out.push_str("histograms (count/mean/max-bucket):\n");
        for (name, h) in &self.histograms {
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .map(|i| 1u64 << i)
                .unwrap_or(0);
            out.push_str(&format!(
                "  {name:<24} n={} mean={:.2} <=~{top}\n",
                h.count,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_incremental_observation() {
        let events = vec![
            TraceEvent::new(
                0,
                0,
                Some(1),
                EventKind::Submitted {
                    arrival: 0,
                    prompt_tokens: 3,
                    deadline: None,
                },
            ),
            TraceEvent::new(
                1,
                0,
                Some(1),
                EventKind::CacheLookup {
                    hit: true,
                    depth: 3,
                    tokens_saved: 3,
                },
            ),
            TraceEvent::new(
                1,
                0,
                Some(1),
                EventKind::Admitted {
                    queued_ticks: 1,
                    warm_until: 1,
                },
            ),
            TraceEvent::new(
                4,
                0,
                Some(1),
                EventKind::Finished {
                    tokens: 8,
                    steps: 3,
                    proposed: 9,
                    accepted: 5,
                },
            ),
        ];
        let whole = MetricsRegistry::from_events(&events);
        let mut incremental = MetricsRegistry::new();
        for ev in &events {
            incremental.observe(ev);
        }
        assert_eq!(whole, incremental);
        assert_eq!(whole.counter("prefix.hits"), 1);
        assert_eq!(whole.counter("prefix.tokens_saved"), 3);
        assert_eq!(whole.counter("finished.accepted"), 5);
        let active = whole.gauge("requests.active").expect("gauge");
        assert_eq!((active.value, active.peak), (0, 1));
        assert_eq!(whole.histogram("queue.ticks").expect("hist").count, 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }
}
