//! Where events go: the [`TraceSink`] trait, the zero-cost
//! [`NoopSink`] default, and the collecting [`EventLog`].

use std::sync::Mutex;

use crate::event::TraceEvent;

/// Receiver for structured trace events.
///
/// Engines hold a `&dyn TraceSink` and call [`record`](Self::record)
/// at every lifecycle transition. The default sink is [`NOOP`]:
/// [`enabled`](Self::enabled) returns `false`, so instrumented code
/// skips building allocation-carrying events entirely and every
/// bit-identity parity suite runs exactly the pre-tracing code path.
///
/// Sinks are `Sync` so a single sink can collect from engines driven
/// on different threads; `record` takes `&self` and owns interior
/// mutability.
pub trait TraceSink: Sync {
    /// Delivers one event. Must not observe or mutate engine state:
    /// tracing is strictly write-only so a sink can never perturb the
    /// deterministic replay it observes.
    fn record(&self, event: TraceEvent);

    /// Whether the sink wants events at all. Instrumentation gates
    /// the construction of expensive events (per-step shapes, batch
    /// id lists) on this; cheap scalar events are built regardless
    /// because aggregate stats derive from them.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// The shared no-op sink instrumented components default to.
pub static NOOP: NoopSink = NoopSink;

/// A sink that appends every event to an in-memory log.
///
/// Interior mutability (a mutex, uncontended in the deterministic
/// lockstep drives) lets one log collect a whole fleet's stream
/// through a shared reference.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<TraceEvent>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the recorded events in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_inner().expect("event log poisoned")
    }
}

impl TraceSink for EventLog {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("event log poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn noop_is_disabled_and_log_collects_in_order() {
        assert!(!NOOP.enabled());
        let log = EventLog::new();
        assert!(log.enabled());
        assert!(log.is_empty());
        for tick in 0..3 {
            log.record(TraceEvent::new(
                tick,
                0,
                None,
                EventKind::IdleSkip { skipped: tick },
            ));
        }
        let events = log.into_events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].tick < w[1].tick));
    }
}
