//! Flamegraph-style per-phase cost attribution.
//!
//! Sums the tick cost of every lifecycle phase across all requests in
//! an event log into a hierarchy of semicolon-joined frames
//! (`request;queued`, `request;decode;deferred`, …) — the collapsed
//! stack format flamegraph tooling consumes — and renders it as a
//! sorted bar chart for the terminal.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::event::{EventKind, TraceEvent};
use crate::timeline::{timelines, Phase, RequestTimeline};

/// Aggregate cost of one frame in the phase hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PhaseCost {
    /// Semicolon-joined frame path (collapsed-stack convention).
    pub path: String,
    /// Total ticks attributed to the frame across all requests.
    pub ticks: u64,
    /// Requests that contributed to the frame.
    pub requests: u64,
}

/// Sums per-phase tick costs across all requests in a log.
///
/// Returned frames are path-sorted; `request` is the root frame whose
/// ticks are the sum of every request's submitted→end lifetime.
pub fn attribute_phases(events: &[TraceEvent]) -> Vec<PhaseCost> {
    let mut frames: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut add = |path: &'static str, ticks: u64| {
        if ticks > 0 {
            let e = frames.entry(path).or_insert((0, 0));
            e.0 += ticks;
            e.1 += 1;
        }
    };
    for tl in timelines(events).values() {
        add("request", tl.end() - tl.submitted);
        add("request;queued", tl.ticks_in(Phase::Queued));
        // Warmup nests inside decode, so the decode frame keeps only
        // the post-warmup remainder and the hierarchy sums cleanly.
        let warm = tl.ticks_in(Phase::Warmup);
        add("request;decode", tl.ticks_in(Phase::Decode) - warm);
        add("request;decode;warmup", warm);
        add("request;parked", tl.ticks_in(Phase::Parked));
        add("request;decode;deferred", tl.deferrals as u64);
    }
    // Engine idle time is fleet-scoped, not per-request.
    let idle: u64 = events
        .iter()
        .map(|e| match e.kind {
            EventKind::IdleSkip { skipped } => skipped,
            _ => 0,
        })
        .sum();
    if idle > 0 {
        frames.insert("engine;idle", (idle, 1));
    }
    frames
        .into_iter()
        .map(|(path, (ticks, requests))| PhaseCost {
            path: path.to_string(),
            ticks,
            requests,
        })
        .collect()
}

/// Renders attributed frames as a tick-sorted horizontal bar chart.
pub fn render_flame(costs: &[PhaseCost]) -> String {
    let mut sorted: Vec<&PhaseCost> = costs.iter().collect();
    sorted.sort_by(|a, b| b.ticks.cmp(&a.ticks).then(a.path.cmp(&b.path)));
    let max = sorted.first().map(|c| c.ticks).unwrap_or(0).max(1);
    let width = sorted.iter().map(|c| c.path.len()).max().unwrap_or(0);
    let mut out = String::new();
    for c in sorted {
        let bar = (c.ticks * 40 / max) as usize;
        out.push_str(&format!(
            "{:<width$}  {:>8}t  {:>5}req  {}\n",
            c.path,
            c.ticks,
            c.requests,
            "#".repeat(bar.max(1)),
        ));
    }
    out
}

/// One row of the slowest-phase table: a single request's single
/// phase interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SlowPhase {
    /// Request id.
    pub request: u64,
    /// Worker serving it.
    pub worker: u32,
    /// Phase name.
    pub phase: String,
    /// Interval start tick.
    pub start: u64,
    /// Ticks spent in the interval.
    pub ticks: u64,
}

/// The `n` costliest single phase intervals across all requests,
/// slowest first (ties broken by request id then start tick for
/// deterministic output).
pub fn slowest_phases(events: &[TraceEvent], n: usize) -> Vec<SlowPhase> {
    let mut rows: Vec<SlowPhase> = timelines(events)
        .values()
        .flat_map(|tl: &RequestTimeline| {
            tl.phases.iter().map(|s| SlowPhase {
                request: tl.request,
                worker: tl.worker,
                phase: s.phase.name().to_string(),
                start: s.start,
                ticks: s.ticks(),
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        b.ticks
            .cmp(&a.ticks)
            .then(a.request.cmp(&b.request))
            .then(a.start.cmp(&b.start))
    });
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn log() -> Vec<TraceEvent> {
        let ev = |tick, req, kind| TraceEvent::new(tick, 0, Some(req), kind);
        vec![
            ev(
                0,
                1,
                EventKind::Submitted {
                    arrival: 0,
                    prompt_tokens: 2,
                    deadline: None,
                },
            ),
            ev(
                1,
                1,
                EventKind::Admitted {
                    queued_ticks: 1,
                    warm_until: 2,
                },
            ),
            ev(
                7,
                1,
                EventKind::Finished {
                    tokens: 5,
                    steps: 5,
                    proposed: 0,
                    accepted: 0,
                },
            ),
            ev(
                2,
                2,
                EventKind::Submitted {
                    arrival: 2,
                    prompt_tokens: 2,
                    deadline: None,
                },
            ),
            ev(
                5,
                2,
                EventKind::Admitted {
                    queued_ticks: 3,
                    warm_until: 5,
                },
            ),
            ev(
                6,
                2,
                EventKind::Finished {
                    tokens: 1,
                    steps: 1,
                    proposed: 0,
                    accepted: 0,
                },
            ),
        ]
    }

    #[test]
    fn attribution_sums_and_nests() {
        let costs = attribute_phases(&log());
        let by_path = |p: &str| costs.iter().find(|c| c.path == p).map(|c| c.ticks);
        assert_eq!(by_path("request"), Some(7 + 4));
        assert_eq!(by_path("request;queued"), Some(1 + 3));
        assert_eq!(by_path("request;decode;warmup"), Some(1));
        // decode excludes the nested warmup tick: (6-1) + 1.
        assert_eq!(by_path("request;decode"), Some(5 + 1));
        let rendered = render_flame(&costs);
        assert!(rendered.contains("request;queued"));
    }

    #[test]
    fn slowest_phase_table_is_sorted_and_truncated() {
        let rows = slowest_phases(&log(), 2);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].ticks >= rows[1].ticks);
        assert_eq!(rows[0].phase, "decode");
        assert_eq!(rows[0].request, 1);
    }
}
