//! # verispec-trace — deterministic structured tracing & metrics
//!
//! The observability layer of the serving stack. Engines, the
//! dispatcher, and the load harness emit typed [`TraceEvent`]s at
//! every lifecycle transition into a [`TraceSink`]; everything else —
//! aggregate stats, the [`MetricsRegistry`], Chrome-trace exports,
//! flamegraph attribution, golden CI logs — is a **pure fold over
//! that one stream**, so no two views of a run can ever disagree.
//!
//! ```text
//!              ┌──────────────────────────────────────────────┐
//!              │  ServeEngine / Dispatcher / load harness     │
//!              │   emit(TraceEvent { tick, worker, req, … })  │
//!              └────────────────┬─────────────────────────────┘
//!                               │  &dyn TraceSink (NoopSink default)
//!                ┌──────────────┴──────────────┐
//!                ▼                             ▼
//!          NoopSink (free)              EventLog (Vec<TraceEvent>)
//!                                              │
//!            ┌──────────────┬──────────────────┼──────────────────┐
//!            ▼              ▼                  ▼                  ▼
//!     MetricsRegistry   chrome_trace()   attribute_phases()   golden log
//!     counters/gauges/  chrome://tracing flamegraph frames    (CI diff)
//!     histograms        / Perfetto JSON  + slowest-phase table
//! ```
//!
//! ## Determinism contract
//!
//! Events are stamped **in tick space only** — the virtual clock that
//! every engine drive (batch, streaming, paced dispatch) advances
//! deterministically. No wall-clock value ever enters an event, so an
//! [`ArrivalTrace`](../verispec_load/trace/struct.ArrivalTrace.html)
//! replay produces a **byte-identical** serialized log
//! ([`log_to_json`]) on every run and every machine. CI commits golden
//! event logs next to the golden trace corpus and replays them
//! byte-for-byte; when a change moves latency, the log diff shows
//! *which phase of which request on which worker* moved.
//!
//! Tracing is strictly write-only: sinks cannot observe or mutate
//! engine state, and the default [`NoopSink`] reports itself
//! [`disabled`](TraceSink::enabled) so instrumented hot paths skip
//! building allocation-carrying events entirely. Every bit-identity
//! parity suite therefore runs the exact pre-tracing code path.
//!
//! ## Event schema
//!
//! A [`TraceEvent`] is an envelope — `tick` (virtual clock), `worker`
//! (fleet index), `request` (if request-scoped) — around an
//! [`EventKind`]:
//!
//! | Kind | Emitted when | Key payload |
//! |------|--------------|-------------|
//! | `Submitted` | request enters the admission queue | arrival, prompt length, deadline |
//! | `CacheLookup` | admission-time prefix-cache walk | hit, depth, tokens saved |
//! | `Admitted` | request leaves the queue | queued ticks, warm-until tick |
//! | `Resumed` / `Preempted` | park/unpark transitions | — |
//! | `Deferred` | verify budget pushes a step | — |
//! | `Step` | one committed decode step | policy [`SpecShape`](verispec_core::SpecShape), proposed/accepted/committed |
//! | `ForkEvicted` / `PrefixEvicted` | session-cap eviction | — |
//! | `Shed` | admission control drops the request | arrival, deadline |
//! | `Finished` | request completes | tokens, steps, lifetime proposed/accepted |
//! | `Deadline` | finish of an SLO request | deadline, met |
//! | `IdleSkip` | engine fast-forwards an idle gap | ticks skipped |
//! | `Batch` | per-tick batch composition | stepped request ids |
//! | `TickBudget` | per-tick budget consumption | capacity, spent, deferred |
//! | `Routed` | fleet routing decision | policy name, per-worker probes |
//!
//! The per-request invariant `accepted <= proposed` holds on
//! `Finished` (lifetime acceptance-history sums); `Step.accepted`
//! counts committed tokens including the guaranteed base/bonus token
//! and so may exceed `Step.proposed` by one.
//!
//! ## Worked example: viewing a run in Perfetto
//!
//! Capture a fleet run and export it:
//!
//! ```rust,ignore
//! use verispec_trace::{chrome_trace, EventLog};
//!
//! let log = EventLog::new();
//! let dispatcher = Dispatcher::new(cfg, &model).with_sink(&log);
//! let report = dispatcher_run_paced(dispatcher, requests);
//! std::fs::write("run.trace.json", chrome_trace(&log.events()))?;
//! ```
//!
//! (or run `cargo run -p verispec-eval --bin trace_view -- events.json
//! --chrome run.trace.json` on a saved event log). Then open
//! <https://ui.perfetto.dev> (or `chrome://tracing` in Chromium) and
//! drag `run.trace.json` in. You'll see one **process per worker**
//! (`worker 0` … `worker 3`), one **track per request**, and on each
//! track the nested spans `request` ▸ `queued` / `decode` ▸ `warmup` /
//! `parked`, with `step` instants carrying the policy-decided shape
//! and acceptance in their args, `routed` instants carrying the probe
//! values that justified the placement, and per-worker `batch` /
//! `budget` counter tracks. Timestamps are virtual-clock ticks
//! rendered as microseconds: a request that queued 3 ticks shows a
//! 3 µs `queued` span.
//!
//! The same log renders in the terminal via the `trace_view` bin, and
//! [`attribute_phases`] + [`render_flame`] produce collapsed-stack
//! frames (`request;decode;warmup`) for flamegraph tooling.

#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod registry;
pub mod report;
pub mod sink;
pub mod timeline;

pub use chrome::chrome_trace;
pub use event::{canonicalize_fleet_events, log_from_json, log_to_json, EventKind, TraceEvent};
pub use registry::{Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use report::{attribute_phases, render_flame, slowest_phases, PhaseCost, SlowPhase};
pub use sink::{EventLog, NoopSink, TraceSink, NOOP};
pub use timeline::{timelines, Phase, PhaseSpan, RequestTimeline};
