//! Chrome trace-event JSON exporter.
//!
//! Renders an event log into the [trace-event format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! **workers become processes** (`pid`), **requests become tracks**
//! (`tid`), and lifecycle **phases become nested complete spans**
//! (`ph:"X"`), with steps, sheds, and deadline outcomes as instants
//! (`ph:"i"`) and batch/budget consumption as counters (`ph:"C"`).
//! Timestamps are virtual-clock ticks reported as microseconds, so
//! one tick renders as 1 µs.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The output is deterministic: metadata first (worker order, then
//! request order), then per-request spans (request order, outermost
//! first), then instants and counters in log order.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};
use crate::timeline::{timelines, Phase};

fn push_entry(out: &mut String, first: &mut bool, entry: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    ");
    out.push_str(entry);
}

fn span(name: &str, pid: u32, tid: u64, start: u64, end: u64) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{start},\"dur\":{}}}",
        end - start
    )
}

fn instant(name: &str, pid: u32, tid: u64, ts: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{args}}}"
    )
}

/// Renders an event log as a complete Chrome trace-event JSON
/// document (the `{"traceEvents": [...]}` object form).
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;

    // Process metadata: one "process" per worker.
    let workers: BTreeSet<u32> = events.iter().map(|e| e.worker).collect();
    for w in &workers {
        push_entry(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{w},\"tid\":0,\"args\":{{\"name\":\"worker {w}\"}}}}"
            ),
        );
    }

    // Thread metadata + phase spans: one "thread" (track) per request.
    let tls = timelines(events);
    for tl in tls.values() {
        let (pid, tid) = (tl.worker, tl.request);
        push_entry(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"request {tid}\"}}}}"
            ),
        );
        // Outermost request span first so viewers stack it as parent.
        let end = tl.end();
        if end > tl.submitted {
            push_entry(
                &mut out,
                &mut first,
                &span("request", pid, tid, tl.submitted, end),
            );
        }
        // Decode intervals before their nested warmup sub-span.
        for phase in [Phase::Queued, Phase::Decode, Phase::Parked, Phase::Warmup] {
            for s in tl.phases.iter().filter(|s| s.phase == phase) {
                push_entry(
                    &mut out,
                    &mut first,
                    &span(phase.name(), pid, tid, s.start, s.end),
                );
            }
        }
    }

    // Instants and counters, in log order.
    for ev in events {
        let pid = ev.worker;
        let tid = ev.request.unwrap_or(0);
        match &ev.kind {
            EventKind::Step {
                shape,
                proposed,
                accepted,
                committed,
                ..
            } => {
                let shape = shape
                    .as_ref()
                    .map(|s| format!("{s:?}"))
                    .unwrap_or_else(|| "ntp".to_string());
                push_entry(
                    &mut out,
                    &mut first,
                    &instant(
                        "step",
                        pid,
                        tid,
                        ev.tick,
                        &format!(
                            "{{\"shape\":\"{shape}\",\"proposed\":{proposed},\"accepted\":{accepted},\"committed\":{committed}}}"
                        ),
                    ),
                );
            }
            EventKind::Deferred => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant("deferred", pid, tid, ev.tick, "{}"),
                );
            }
            EventKind::Shed { .. } => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant("shed", pid, tid, ev.tick, "{}"),
                );
            }
            EventKind::Deadline { deadline, met } => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant(
                        "deadline",
                        pid,
                        tid,
                        ev.tick,
                        &format!("{{\"deadline\":{deadline},\"met\":{met}}}"),
                    ),
                );
            }
            EventKind::ForkEvicted | EventKind::PrefixEvicted => {
                let name = if matches!(ev.kind, EventKind::ForkEvicted) {
                    "fork_evicted"
                } else {
                    "prefix_evicted"
                };
                push_entry(
                    &mut out,
                    &mut first,
                    &instant(name, pid, tid, ev.tick, "{}"),
                );
            }
            EventKind::Routed { policy, probes } => {
                let mut probes_json = String::from("[");
                for (i, p) in probes.iter().enumerate() {
                    if i > 0 {
                        probes_json.push(',');
                    }
                    let _ = write!(probes_json, "{p}");
                }
                probes_json.push(']');
                push_entry(
                    &mut out,
                    &mut first,
                    &instant(
                        "routed",
                        pid,
                        tid,
                        ev.tick,
                        &format!("{{\"policy\":\"{policy}\",\"probes\":{probes_json}}}"),
                    ),
                );
            }
            EventKind::Batch { requests } => {
                push_entry(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"batch\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"requests\":{}}}}}",
                        ev.tick,
                        requests.len()
                    ),
                );
            }
            EventKind::WorkerCrashed { in_flight } => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant(
                        "worker_crashed",
                        pid,
                        0,
                        ev.tick,
                        &format!("{{\"in_flight\":{in_flight}}}"),
                    ),
                );
            }
            EventKind::WorkerRestarted => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant("worker_restarted", pid, 0, ev.tick, "{}"),
                );
            }
            EventKind::Migrated {
                from,
                to,
                replay_tokens,
            } => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant(
                        "migrated",
                        pid,
                        tid,
                        ev.tick,
                        &format!(
                            "{{\"from\":{from},\"to\":{to},\"replay_tokens\":{replay_tokens}}}"
                        ),
                    ),
                );
            }
            EventKind::Backpressure => {
                push_entry(
                    &mut out,
                    &mut first,
                    &instant("backpressure", pid, tid, ev.tick, "{}"),
                );
            }
            EventKind::TickBudget {
                capacity, spent, ..
            } => {
                push_entry(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"budget\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"capacity\":{capacity},\"spent\":{spent}}}}}",
                        ev.tick
                    ),
                );
            }
            _ => {}
        }
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn export_parses_and_has_expected_shape() {
        let ev = |tick, kind| TraceEvent::new(tick, 2, Some(5), kind);
        let events = vec![
            ev(
                0,
                EventKind::Submitted {
                    arrival: 0,
                    prompt_tokens: 2,
                    deadline: None,
                },
            ),
            ev(
                1,
                EventKind::Admitted {
                    queued_ticks: 1,
                    warm_until: 1,
                },
            ),
            ev(
                3,
                EventKind::Step {
                    shape: None,
                    proposed: 0,
                    accepted: 1,
                    truncated: 0,
                    committed: 1,
                },
            ),
            ev(
                4,
                EventKind::Finished {
                    tokens: 2,
                    steps: 2,
                    proposed: 0,
                    accepted: 0,
                },
            ),
        ];
        let json = chrome_trace(&events);
        let value: Value = serde_json::from_str(&json).expect("valid JSON");
        let items = match value.field("traceEvents").expect("traceEvents key") {
            Value::Seq(items) => items,
            other => panic!("traceEvents is {}", other.kind()),
        };
        // process_name + thread_name + request span + queued span +
        // decode span + step instant.
        assert_eq!(items.len(), 6);
        for item in items {
            assert!(item.field("ph").is_ok());
            assert!(item.field("pid").is_ok());
        }
    }
}
