//! The typed event schema: every observable lifecycle transition in
//! the serving stack, stamped in tick space.
//!
//! Events are a **pure function of the replayed workload**: they carry
//! virtual-clock ticks only (never wall-clock durations), so the same
//! [`ArrivalTrace`](../../verispec_load/trace/struct.ArrivalTrace.html)
//! replay produces a byte-identical event log on every run, on every
//! machine, under every drive (batch, streaming, paced dispatch). That
//! purity is what lets CI commit golden event logs and diff them.

use serde::{Deserialize, Serialize};
use verispec_core::SpecShape;

/// One structured trace event.
///
/// `tick` is the emitting worker's virtual clock at the moment of the
/// transition. `worker` identifies the engine in a fleet (0 for a
/// single engine). `request` is the request id the event concerns, or
/// `None` for engine-scoped events such as [`EventKind::IdleSkip`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual-clock tick at which the transition happened.
    pub tick: u64,
    /// Worker (engine) index within the fleet; 0 for a single engine.
    pub worker: u32,
    /// Request the event concerns, if any.
    pub request: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// The lifecycle transition an event records.
///
/// Variants are grouped by the layer that emits them: request
/// lifecycle (engine admission queue), per-step decode, cache and
/// capacity pressure, and fleet-level dispatch. See the crate-level
/// docs for the full worked schema walkthrough.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A request entered the engine's admission queue.
    Submitted {
        /// Arrival tick from the workload (may predate the stamp when
        /// a paced drive delivers late).
        arrival: u64,
        /// Prompt length in tokens.
        prompt_tokens: usize,
        /// Absolute-deadline tick, if the request carries an SLO.
        deadline: Option<u64>,
    },
    /// The admission-time prefix-cache walk for a fresh request.
    CacheLookup {
        /// Whether a snapshot-bearing prefix matched.
        hit: bool,
        /// Depth (in tokens) of the deepest usable prefix.
        depth: usize,
        /// Prefill tokens skipped thanks to the hit (equals `depth`
        /// under whole-prefix reuse).
        tokens_saved: usize,
    },
    /// A fresh request left the queue and became active.
    Admitted {
        /// Ticks spent queued (stamp minus submission tick).
        queued_ticks: u64,
        /// Tick until which the request is prefill-warming.
        warm_until: u64,
    },
    /// A parked (preempted) request re-entered the active set.
    Resumed,
    /// The scheduler parked an active request to admit a starving one.
    Preempted,
    /// The per-tick verify budget deferred this request's step.
    Deferred,
    /// One committed decode step (propose → verify → commit).
    Step {
        /// The policy-decided speculation shape this step ran, if the
        /// engine speculates (`None` for plain next-token decode).
        shape: Option<SpecShape>,
        /// Candidate tokens proposed (speculated) this step.
        proposed: usize,
        /// Tokens accepted into the output this step (includes the
        /// guaranteed base/bonus token, so it may exceed `proposed`
        /// by one; the strict `accepted <= proposed` invariant lives
        /// on [`EventKind::Finished`]).
        accepted: usize,
        /// Accepted tokens dropped by the `max_tokens` clamp.
        truncated: usize,
        /// Tokens actually appended to the output.
        committed: usize,
    },
    /// Propose-time grammar pruning of one step's candidate tree (only
    /// emitted by grammar-constrained engines).
    GrammarPrune {
        /// Candidate tokens in the tree as built (viability-filtered).
        considered: usize,
        /// Candidate tokens cut as dead tails (past the last fragment
        /// boundary — they could never survive the post-hoc syntax
        /// check, so they are never verified).
        pruned: usize,
        /// Candidate tokens actually sent to verification.
        surviving: usize,
    },
    /// A queued fork was dropped by the session-cap enforcer.
    ForkEvicted,
    /// The LRU prefix-cache leaf was evicted under the session cap.
    PrefixEvicted,
    /// Admission control dropped the request (queue overflow past
    /// `shed_depth`).
    Shed {
        /// Arrival tick from the workload.
        arrival: u64,
        /// Absolute-deadline tick, if any.
        deadline: Option<u64>,
    },
    /// A request completed and left the engine.
    Finished {
        /// Generated tokens in the completion.
        tokens: usize,
        /// Decode steps the request ran.
        steps: usize,
        /// Lifetime speculated candidate tokens (acceptance-history
        /// numerator bound).
        proposed: usize,
        /// Lifetime accepted candidate tokens; always `<= proposed`.
        accepted: usize,
    },
    /// Deadline outcome, emitted at finish for SLO-carrying requests.
    Deadline {
        /// The absolute-deadline tick.
        deadline: u64,
        /// Whether the request finished at or before it.
        met: bool,
    },
    /// The engine fast-forwarded its clock over an idle gap.
    IdleSkip {
        /// Ticks skipped without stepping.
        skipped: u64,
    },
    /// Per-tick batch composition: the requests stepped this tick.
    Batch {
        /// Request ids fused into this tick's batched passes, in
        /// schedule order.
        requests: Vec<u64>,
    },
    /// Per-tick verify-budget consumption (only emitted when a
    /// `tick_capacity` budget is configured).
    TickBudget {
        /// Configured per-tick candidate budget.
        capacity: usize,
        /// Candidates actually spent this tick.
        spent: usize,
        /// Requests pushed to the next tick by the budget.
        deferred: usize,
    },
    /// A fleet routing decision, stamped at the fleet clock; `worker`
    /// on the envelope is the chosen worker.
    Routed {
        /// Route-policy name (`rr`, `jsq`, `least-loaded`, `pinned`,
        /// `prefix-affine`).
        policy: String,
        /// The per-worker probe values that justified the choice, in
        /// worker order: queue depths for `jsq`, outstanding
        /// speculation cost for `least-loaded`, prefix match depths
        /// for `prefix-affine`; empty when the policy probes nothing.
        probes: Vec<u64>,
    },
    /// A fault-plan crash killed the worker on the envelope: its
    /// in-flight and queued requests were extracted for migration and
    /// its engine state was wiped. Stamped at the fleet clock.
    WorkerCrashed {
        /// Requests (in-flight + queued) extracted for migration.
        in_flight: usize,
    },
    /// A fault-plan restart brought the worker on the envelope back
    /// into the routable set (cold: empty queue, empty caches).
    WorkerRestarted,
    /// A request stranded by a crash was re-routed to a live worker
    /// and rebuilt there by exact replay (fresh re-ingestion of the
    /// full prompt; deterministic decode regenerates the same tokens).
    /// `worker` on the envelope is the destination.
    Migrated {
        /// The crashed worker the request was extracted from.
        from: u32,
        /// The live worker it was re-routed to.
        to: u32,
        /// Tokens the request had already generated on the dead
        /// worker — work the replay re-does.
        replay_tokens: usize,
    },
    /// The dispatcher deferred an arrival because no live worker could
    /// accept it (every worker crashed and not yet restarted); the
    /// request is parked fleet-side and re-routed on the next restart.
    Backpressure,
}

impl EventKind {
    /// Whether this event is emitted by the fleet coordinator (routing
    /// and fault-plan transitions) rather than by a worker engine.
    /// Coordinator events form one serial stream in both the lockstep
    /// and threaded drives, which is why
    /// [`canonicalize_fleet_events`] keeps them in emission order
    /// ahead of the per-worker groups.
    pub fn is_fleet_event(&self) -> bool {
        matches!(
            self,
            EventKind::Routed { .. }
                | EventKind::WorkerCrashed { .. }
                | EventKind::WorkerRestarted
                | EventKind::Migrated { .. }
                | EventKind::Backpressure
        )
    }
}

impl TraceEvent {
    /// Builds an event; mirrors the struct literal, for call sites
    /// that prefer a constructor.
    pub fn new(tick: u64, worker: u32, request: Option<u64>, kind: EventKind) -> Self {
        TraceEvent {
            tick,
            worker,
            request,
            kind,
        }
    }
}

/// Serializes an event log to deterministic, pretty-printed JSON.
///
/// Field order follows struct declaration order and map insertion
/// order (the vendored serde preserves both), so equal logs produce
/// byte-equal strings — the property the golden event-log CI step and
/// the determinism proptests pin.
pub fn log_to_json(events: &[TraceEvent]) -> String {
    serde_json::to_string_pretty(&events.to_vec()).expect("event logs serialize infallibly")
}

/// Parses an event log serialized by [`log_to_json`].
pub fn log_from_json(s: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    serde_json::from_str(s)
}

/// Rewrites a fleet event stream into its *canonical* order, the form
/// under which the lockstep and threaded dispatch drives are compared:
/// all coordinator events ([`EventKind::is_fleet_event`] — routing
/// decisions and fault-plan transitions) first, in emission order
/// (they are coordinator-serial decisions in both drives), followed
/// by every other event grouped by worker id ascending, preserving
/// each worker's own emission order.
///
/// Why this form: a lockstep fleet interleaves all workers' events
/// into one shared sink in tick-round order, while the threaded fleet
/// collects one log per worker thread and concatenates them. The two
/// interleavings differ (a `Routed` event stamped at the fleet clock
/// can legally precede *or* follow a lagging worker's same-tick
/// events) but the per-worker subsequences — and the routing
/// subsequence — are each deterministic. Canonicalizing both sides
/// makes "event-for-event identical" well-defined without imposing a
/// fake total order on concurrent workers.
pub fn canonicalize_fleet_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let mut canonical = Vec::with_capacity(events.len());
    let mut per_worker: std::collections::BTreeMap<u32, Vec<TraceEvent>> =
        std::collections::BTreeMap::new();
    for ev in events {
        if ev.kind.is_fleet_event() {
            canonical.push(ev.clone());
        } else {
            per_worker.entry(ev.worker).or_default().push(ev.clone());
        }
    }
    for (_, worker_events) in per_worker {
        canonical.extend(worker_events);
    }
    canonical
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(
                0,
                0,
                Some(7),
                EventKind::Submitted {
                    arrival: 0,
                    prompt_tokens: 4,
                    deadline: Some(40),
                },
            ),
            TraceEvent::new(
                1,
                0,
                Some(7),
                EventKind::CacheLookup {
                    hit: true,
                    depth: 2,
                    tokens_saved: 2,
                },
            ),
            TraceEvent::new(
                3,
                1,
                Some(7),
                EventKind::Step {
                    shape: Some(SpecShape::Tree {
                        widths: vec![2, 1],
                        depth: 2,
                    }),
                    proposed: 3,
                    accepted: 2,
                    truncated: 0,
                    committed: 2,
                },
            ),
            TraceEvent::new(9, 1, None, EventKind::IdleSkip { skipped: 4 }),
        ]
    }

    #[test]
    fn json_round_trip_is_identity() {
        let events = sample();
        let json = log_to_json(&events);
        let back = log_from_json(&json).expect("parse");
        assert_eq!(events, back);
        // Serialization is deterministic: re-serializing the parsed
        // log reproduces the exact bytes.
        assert_eq!(json, log_to_json(&back));
    }

    #[test]
    fn canonicalization_groups_by_worker_and_keeps_routing_order() {
        let routed = |tick: u64, worker: u32, id: u64| {
            TraceEvent::new(
                tick,
                worker,
                Some(id),
                EventKind::Routed {
                    policy: "jsq".into(),
                    probes: vec![0, 1],
                },
            )
        };
        let idle = |tick: u64, worker: u32| {
            TraceEvent::new(tick, worker, None, EventKind::IdleSkip { skipped: 1 })
        };
        // A lockstep-style interleaving: worker 1's tick-2 event lands
        // between the two routing decisions, worker 0 lags behind.
        let interleaved = vec![
            routed(2, 0, 7),
            idle(2, 1),
            routed(2, 1, 8),
            idle(1, 0),
            idle(3, 1),
        ];
        // The threaded-style merge of the same run: routing stream
        // first, then each worker's own stream, by worker id.
        let merged = vec![
            routed(2, 0, 7),
            routed(2, 1, 8),
            idle(1, 0),
            idle(2, 1),
            idle(3, 1),
        ];
        assert_eq!(
            canonicalize_fleet_events(&interleaved),
            canonicalize_fleet_events(&merged)
        );
        // The merged form is already canonical (a fixed point).
        assert_eq!(canonicalize_fleet_events(&merged), merged);
    }
}
