//! Dataset construction walk-through (paper §III-A, Figs. 2–3).
//!
//! Generates raw Verilog modules, runs the refinement pipeline (structure
//! filter, comment filter, syntax check, MinHash dedup), then shows the
//! paper's syntactic-fragment machinery on a concrete module: significant
//! tokens, `[FRAG]` tagging, and the syntax-enriched label grid with its
//! growing `[IGNORE]` fractions.
//!
//! Run with:
//! ```sh
//! cargo run --release --example data_pipeline
//! ```

use verispec::core::LabelGrid;
use verispec::data::{Corpus, CorpusConfig};
use verispec::tokenizer::{special, BpeTrainer};
use verispec::verilog::significant::SignificantTokens;

fn main() {
    println!("== VeriSpec data pipeline ==\n");

    // 1. Corpus refinement with statistics (Fig. 2).
    let corpus = Corpus::build(&CorpusConfig {
        size: 256,
        ..Default::default()
    });
    let s = corpus.stats;
    println!("generated          : {}", s.generated);
    println!("dropped (structure): {}", s.dropped_structure);
    println!("dropped (comments) : {}", s.dropped_comments);
    println!("dropped (syntax)   : {}", s.dropped_syntax);
    println!("dropped (dedup)    : {}", s.dropped_duplicates);
    println!("retained           : {}\n", s.retained);

    // 2. Significant tokens + [FRAG] segmentation (Fig. 3) on the
    //    first register-like item.
    let item = corpus
        .items
        .iter()
        .find(|i| i.family == "data_register")
        .unwrap_or(&corpus.items[0]);
    println!(
        "--- module `{}` ({}) ---\n{}",
        item.name, item.family, item.source
    );

    let file = verispec::verilog::parse(&item.source).expect("corpus items parse");
    let sig = SignificantTokens::from_source_file(&file);
    let idents: Vec<&str> = sig.iter().collect();
    println!("AST-derived significant identifiers: {idents:?}\n");
    println!("[FRAG]-tagged source:\n{}\n", item.tagged_source);

    // 3. Syntax-enriched labels (Fig. 4): tokenize and build the grid.
    let tok = BpeTrainer::new(512).train(corpus.items.iter().map(|i| i.tagged_source.as_str()));
    let ids = tok.encode(&item.tagged_source);
    let n_heads = 10;
    let grid = LabelGrid::syntax_enriched_parallel(&ids, n_heads);
    println!(
        "label grid: {} positions x {} heads",
        grid.seq_len(),
        n_heads
    );
    for h in [1, 3, 5, 10] {
        println!(
            "  head {h:>2}: {:>5.1}% of positions masked [IGNORE]",
            100.0 * grid.ignore_fraction(h)
        );
    }
    println!(
        "\nthe growing mask is what lets later heads train on easy, \
         fragment-aligned targets (paper §III-C)"
    );

    // 4. Show one column of the grid, like Fig. 4's "After" panel.
    let col = ids.len() / 3;
    println!("\nlabel column at position {col}:");
    for h in 0..=n_heads {
        let l = grid.label(h, col);
        let text = if l == special::IGNORE {
            "[IGNORE]".to_string()
        } else {
            format!("{:?}", tok.token_text(l))
        };
        let row = if h == 0 {
            "base".to_string()
        } else {
            format!("head {h}")
        };
        println!("  {row:>7}: {text}");
    }
}
