//! Quickstart: the full VeriSpec loop in one file.
//!
//! Builds a small corpus, trains the three model variants (NTP, Medusa,
//! Ours), generates a module for one benchmark prompt with each, and
//! prints what happened — the 60-second tour of the paper's method.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use verispec::core::{DecodeConfig, TrainMethod};
use verispec::eval::{
    generate, judge, rtllm_sim, token_budget, ModelScale, Pipeline, PipelineConfig,
};

fn main() {
    println!("== VeriSpec quickstart ==\n");

    // 1. Corpus + tokenizer + encoded datasets (the Fig.-2 pipeline).
    let pipe = Pipeline::build(PipelineConfig {
        corpus_size: 192,
        vocab: 512,
        n_heads: 6,
        epochs: 1,
        ..Default::default()
    });
    println!(
        "corpus: {} items retained ({} generated, {} dup dropped), vocab {}",
        pipe.corpus.stats.retained,
        pipe.corpus.stats.generated,
        pipe.corpus.stats.dropped_duplicates,
        pipe.tokenizer.vocab_size()
    );

    // 2. A benchmark problem (the paper's running data_register example
    //    when present, otherwise the first problem).
    let bench = rtllm_sim();
    let problem = bench
        .problems
        .iter()
        .find(|p| p.module.family == "data_register")
        .unwrap_or(&bench.problems[0]);
    println!(
        "\nprompt ({}):\n  {}\n",
        problem.id, problem.module.description
    );

    // 3. Train and generate with each method.
    for method in [TrainMethod::Ours, TrainMethod::Medusa, TrainMethod::Ntp] {
        let model = pipe.model_for(ModelScale::Small, method, (1, 1));
        let cfg = DecodeConfig {
            max_tokens: token_budget(&pipe.tokenizer, problem, method),
            ..Default::default()
        };
        let cost = ModelScale::Small.cost_model();
        let g = generate(&model, &pipe.tokenizer, problem, method, &cfg, &cost);
        let verdict = judge(&g.code, problem, 7);
        println!(
            "[{:<6}] steps={:<4} tokens={:<4} sim-speed={:>7.1} tok/s  verdict={:?}",
            method.name(),
            g.output.steps,
            g.output.tokens.len(),
            g.output.clock.tokens_per_second(),
            verdict
        );
        let preview: String = g.code.chars().take(160).collect();
        println!(
            "  generated: {}\n",
            preview.replace('\n', "\n             ")
        );
    }

    println!("done — see `cargo run -p verispec-bench --bin table2_speed` for the full tables");
}
