//! Fig.-5 style decode-trace comparison.
//!
//! Trains the three model variants, decodes the paper's `data_register`
//! example greedily with each, and prints the per-step commits — showing
//! how "Ours" finishes in fewer steps while every multi-token step ends
//! on a complete syntactic fragment.
//!
//! Run with:
//! ```sh
//! cargo run --release --example decode_trace
//! ```

use verispec::eval::{run_fig5, ModelScale, Pipeline, PipelineConfig};

fn main() {
    println!("== VeriSpec decode traces (Fig. 5) ==\n");
    let pipe = Pipeline::build(PipelineConfig {
        corpus_size: 256,
        vocab: 512,
        n_heads: 8,
        epochs: 2,
        ..Default::default()
    });

    let traces = run_fig5(&pipe, ModelScale::Large);
    for t in &traces {
        println!(
            "[{:<6}] {} steps for {} tokens ({:.2} tokens/step), \
             fragment-complete multi-token steps: {:.0}%",
            t.method,
            t.steps,
            t.tokens,
            t.tokens as f64 / t.steps.max(1) as f64,
            100.0 * t.fragment_complete_ratio
        );
    }

    println!("\nper-step commits:");
    for t in &traces {
        println!("\n--- {} ---", t.method);
        for (i, s) in t.step_texts.iter().enumerate() {
            println!("  step {:>3}: {:?}", i + 1, s);
        }
    }

    let ntp = traces
        .iter()
        .find(|t| t.method == "NTP")
        .expect("ntp trace");
    let ours = traces
        .iter()
        .find(|t| t.method == "Ours")
        .expect("ours trace");
    println!(
        "\nsummary: Ours used {} steps vs NTP's {} ({}x fewer), mirroring \
         the paper's 14 vs 77 example",
        ours.steps,
        ntp.steps,
        ntp.steps / ours.steps.max(1)
    );
}
