//! Runs a reduced Table-I/Table-II evaluation and prints the tables.
//!
//! This is the example-sized version of the full harness in
//! `verispec-bench`; it uses the quick scale so it completes in minutes
//! even on a laptop.
//!
//! Run with:
//! ```sh
//! cargo run --release --example benchmark_eval
//! ```

use verispec::eval::{
    fig6_from_cells, render_table1, render_table2, run_table1, run_table2, Pipeline, Scale,
};

fn main() {
    println!("== VeriSpec benchmark evaluation (quick scale) ==\n");
    let scale = Scale::quick();
    let pipe = Pipeline::build(scale.pipeline);
    println!(
        "corpus {} items, vocab {}, methods trained per cell on demand\n",
        pipe.corpus.stats.retained,
        pipe.tokenizer.vocab_size()
    );

    let speed = run_table2(&scale, &pipe);
    println!("{}", render_table2(&speed));

    let cells = run_table1(&scale, &pipe);
    println!("{}", render_table1(&cells));

    println!("Fig. 6 series (Small model, pass@5 vs data fraction):");
    for p in fig6_from_cells(&cells) {
        println!(
            "  {:<8} {:<10} {}/{}  func {:>6.2}%  syntax {:>6.2}%",
            p.method, p.benchmark, p.fraction.0, p.fraction.1, p.function_pass5, p.syntax_pass5
        );
    }
    println!("\nfor the full-scale artifacts run the verispec-bench binaries");
}
