//! Cross-method invariants on trained models: label-driven differences
//! between NTP, Medusa, and Ours show up where the paper says they
//! should.

use verispec::core::{LabelGrid, TrainMethod};
use verispec::eval::{ModelScale, Pipeline, PipelineConfig};
use verispec::tokenizer::special;

fn pipe() -> Pipeline {
    Pipeline::build(PipelineConfig {
        corpus_size: 64,
        vocab: 400,
        n_heads: 6,
        epochs: 1,
        seed: 6,
        ..Default::default()
    })
}

#[test]
fn tagged_sequences_are_longer_but_same_code() {
    let p = pipe();
    for (plain, tagged) in p.plain_sequences.iter().zip(&p.tagged_sequences).take(10) {
        assert!(tagged.len() > plain.len(), "FRAG markers must add tokens");
        let frag_count = tagged.iter().filter(|&&t| t == special::FRAG).count();
        assert!(
            frag_count >= 10,
            "expected many FRAG tokens, got {frag_count}"
        );
    }
}

#[test]
fn ours_head_supervision_is_sparser_and_easier() {
    // The syntax-enriched grid masks more positions for later heads
    // (paper: "the progressive increase of the proportion of [IGNORE]
    // tokens in the labels of later heads reduces their prediction
    // difficulty").
    let p = pipe();
    let n_heads = 6;
    let mut ratio_first = 0.0f64;
    let mut ratio_last = 0.0f64;
    let mut count = 0usize;
    for seq in p.tagged_sequences.iter().take(20) {
        let g = LabelGrid::syntax_enriched_parallel(seq, n_heads);
        ratio_first += g.ignore_fraction(1);
        ratio_last += g.ignore_fraction(n_heads);
        count += 1;
    }
    ratio_first /= count as f64;
    ratio_last /= count as f64;
    assert!(
        ratio_last > ratio_first + 0.2,
        "head {n_heads} should be masked much more than head 1: {ratio_first:.2} vs {ratio_last:.2}"
    );
}

#[test]
fn ntp_models_have_no_heads_and_speculative_models_do() {
    let p = pipe();
    let ntp = p.model_for(ModelScale::Small, TrainMethod::Ntp, (1, 2));
    assert_eq!(ntp.n_heads(), 0);
    let ours = p.model_for(ModelScale::Small, TrainMethod::Ours, (1, 2));
    assert_eq!(ours.n_heads(), 6);
    let medusa = p.model_for(ModelScale::Small, TrainMethod::Medusa, (1, 2));
    assert_eq!(medusa.n_heads(), 6);
}

#[test]
fn ours_heads_predict_better_within_fragments_than_medusa_heads() {
    // The mechanism behind the speedup: heads trained on fragment-masked
    // labels should assign higher probability to the true next-next token
    // at fragment-interior positions than heads trained on unmasked
    // far-future targets. Measured on training data (both models see the
    // same corpus; Ours sees it tagged).
    let p = pipe();
    let ours = p.model_for(ModelScale::Small, TrainMethod::Ours, (1, 1));
    let medusa = p.model_for(ModelScale::Small, TrainMethod::Medusa, (1, 1));

    let mut ours_nll = 0.0f64;
    let mut ours_n = 0usize;
    for seq in p.tagged_sequences.iter().take(8) {
        let grid = LabelGrid::syntax_enriched_parallel(seq, ours.n_heads());
        for pos in 0..seq.len().saturating_sub(3) {
            let target = grid.label(1, pos);
            if target == special::IGNORE {
                continue;
            }
            let logits = &ours.multi_logits(&seq[..=pos])[1];
            let lp = verispec::lm::matrix::log_softmax(logits);
            ours_nll += -lp[target as usize] as f64;
            ours_n += 1;
        }
    }
    let mut med_nll = 0.0f64;
    let mut med_n = 0usize;
    for seq in p.plain_sequences.iter().take(8) {
        for pos in 0..seq.len().saturating_sub(3) {
            let target = seq[pos + 2];
            let logits = &medusa.multi_logits(&seq[..=pos])[1];
            let lp = verispec::lm::matrix::log_softmax(logits);
            med_nll += -lp[target as usize] as f64;
            med_n += 1;
        }
    }
    let ours_nll = ours_nll / ours_n.max(1) as f64;
    let med_nll = med_nll / med_n.max(1) as f64;
    // Ours' first head trains on a (masked, easier) subset; its NLL on
    // that subset should not be worse than Medusa's unrestricted head 1.
    assert!(
        ours_nll <= med_nll * 1.25,
        "ours head-1 NLL {ours_nll:.3} should be in the ballpark of medusa's {med_nll:.3} or better"
    );
}
