//! End-to-end integration test: corpus → tokenizer → training → decoding
//! → syntax/functional judging, across every crate in the workspace.

use verispec::core::{DecodeConfig, TrainMethod};
use verispec::eval::{
    generate, judge, rtllm_sim, token_budget, vgen_sim, ModelScale, Pipeline, PipelineConfig,
    Verdict,
};
use verispec::lm::Sampling;

fn tiny_pipeline() -> Pipeline {
    Pipeline::build(PipelineConfig {
        corpus_size: 64,
        vocab: 400,
        n_heads: 4,
        epochs: 1,
        seed: 5,
        ..Default::default()
    })
}

#[test]
fn full_loop_produces_judgeable_output_for_all_methods() {
    let pipe = tiny_pipeline();
    let bench = rtllm_sim();
    let problem = &bench.problems[0];
    for method in [TrainMethod::Ours, TrainMethod::Medusa, TrainMethod::Ntp] {
        let model = pipe.model_for(ModelScale::Small, method, (1, 1));
        let cfg = DecodeConfig {
            max_tokens: token_budget(&pipe.tokenizer, problem, method),
            ..Default::default()
        };
        let g = generate(
            &model,
            &pipe.tokenizer,
            problem,
            method,
            &cfg,
            &ModelScale::Small.cost_model(),
        );
        // The verdict may be anything for a tiny model, but the loop must
        // complete and produce clean text.
        assert!(!g.code.contains("[FRAG]"), "{}: FRAG leaked", method.name());
        assert!(!g.code.contains("[EOS]"), "{}: EOS leaked", method.name());
        let _ = judge(&g.code, problem, 3);
        assert!(g.output.steps > 0);
        assert_eq!(
            g.output.tokens.len(),
            g.output
                .trace
                .iter()
                .map(|t| t.committed.len())
                .sum::<usize>(),
            "{}: trace must account for all tokens",
            method.name()
        );
    }
}

#[test]
fn vgen_header_seeding_reaches_the_judge() {
    let pipe = tiny_pipeline();
    let bench = vgen_sim();
    let problem = &bench.problems[0];
    let model = pipe.model_for(ModelScale::Small, TrainMethod::Ours, (1, 1));
    let cfg = DecodeConfig {
        max_tokens: 64,
        sampling: Sampling::temperature(0.6),
        seed: 9,
        ..Default::default()
    };
    let g = generate(
        &model,
        &pipe.tokenizer,
        problem,
        TrainMethod::Ours,
        &cfg,
        &ModelScale::Small.cost_model(),
    );
    // Judging a VGen completion prepends the plain header; the composed
    // source must start with the module keyword.
    let v = judge(&g.code, problem, 3);
    let composed = format!("{}{}", problem.completion_prefix(), g.code);
    assert!(composed.starts_with("module "), "{composed}");
    let _ = v;
}

#[test]
fn reference_solutions_pass_all_benchmarks() {
    // The reference implementation of every benchmark problem must pass
    // its own judge — the strongest cross-crate invariant (generators,
    // parser, elaborator, interpreter, harness, judge all agree). The
    // judge prepends the prompt header for VGen-style problems, so we
    // hand it only the body there (what a model would generate).
    for bench in [rtllm_sim(), vgen_sim()] {
        for p in &bench.problems {
            let completion = match &p.plain_header {
                Some(h) => p
                    .module
                    .source
                    .strip_prefix(h.as_str())
                    .expect("header prefixes"),
                None => p.module.source.as_str(),
            };
            let v = judge(completion, p, 42);
            assert_eq!(v, Verdict::Pass, "{} reference failed: {v:?}", p.id);
        }
    }
}

#[test]
fn greedy_speculative_decoding_is_lossless_end_to_end() {
    // Medusa greedy decode must reproduce the NTP greedy stream of the
    // same model — verified on a really-trained model over real prompts.
    let pipe = tiny_pipeline();
    let model = pipe.model_for(ModelScale::Small, TrainMethod::Medusa, (1, 1));
    let bench = rtllm_sim();
    for problem in bench.problems.iter().take(3) {
        let prompt = pipe.tokenizer.encode(&problem.prompt_plain());
        let cfg = DecodeConfig {
            max_tokens: 48,
            ..Default::default()
        };
        let cost = ModelScale::Small.cost_model();
        let ntp = verispec::core::decode_ntp(&model, &prompt, &cfg, &cost);
        let med = verispec::core::decode_speculative(&model, &prompt, &cfg, &cost);
        assert_eq!(ntp.tokens, med.tokens, "{}", problem.id);
        assert!(med.steps <= ntp.steps, "{}", problem.id);
    }
}
