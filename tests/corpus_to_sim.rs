//! Integration between the corpus generators, the Verilog front-end, and
//! the simulator: every retained corpus item parses, round-trips through
//! the printer, fragmentizes reversibly, and elaborates.

use verispec::data::{Corpus, CorpusConfig};
use verispec::sim::elaborate;
use verispec::verilog::fragment::{defragmentize, fragmentize};
use verispec::verilog::printer::print_source_file;
use verispec::verilog::significant::SignificantTokens;

#[test]
fn corpus_items_survive_the_full_front_end() {
    let corpus = Corpus::build(&CorpusConfig {
        size: 128,
        ..Default::default()
    });
    assert!(corpus.stats.retained >= 64, "{:?}", corpus.stats);
    for item in &corpus.items {
        // Parse.
        let file = verispec::verilog::parse(&item.source)
            .unwrap_or_else(|e| panic!("[{}] parse: {e}", item.family));
        // Print -> reparse stability (modulo normalization).
        let printed = print_source_file(&file);
        let reparsed = verispec::verilog::parse(&printed)
            .unwrap_or_else(|e| panic!("[{}] reparse: {e}\n{printed}", item.family));
        assert_eq!(
            reparsed.normalized(),
            file.normalized(),
            "[{}] print/parse round trip",
            item.family
        );
        // Fragment round trip.
        let sig = SignificantTokens::from_source_file(&file);
        let tagged = fragmentize(&item.source, &sig).expect("fragmentize");
        assert_eq!(defragmentize(&tagged), item.source, "[{}]", item.family);
        assert_eq!(
            tagged, item.tagged_source,
            "[{}] pipeline tagging agrees",
            item.family
        );
        // Elaborate.
        elaborate(&file.modules[0])
            .unwrap_or_else(|e| panic!("[{}] elaborate: {e}\n{}", item.family, item.source));
    }
}

#[test]
fn corpus_stats_are_consistent() {
    let corpus = Corpus::build(&CorpusConfig {
        size: 100,
        ..Default::default()
    });
    let s = corpus.stats;
    assert_eq!(
        s.generated,
        s.dropped_structure
            + s.dropped_comments
            + s.dropped_syntax
            + s.dropped_duplicates
            + s.retained,
        "{s:?}"
    );
    assert_eq!(corpus.items.len(), s.retained);
}
